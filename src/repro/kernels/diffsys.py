"""Integer-indexed difference-constraint solving with incremental SPFA.

``CompiledSystem`` mirrors :class:`repro.retime.constraints.
DifferenceSystem` — same dedup-by-tightest-bound semantics, same
virtual-source SPFA fixed point — on flat arrays keyed by vertex id.
Because the maximal non-positive solution of a difference system is
*unique*, the kernel's answers are exactly the dict solver's, however
they are computed.

The incremental mode is the point: the lazy constraint loops solve,
add a few period constraints, and solve again.  Distances only ever
decrease when constraints are added, so re-relaxation can start from
the previous solution instead of from scratch — warm-started
Bellman-Ford converges in as many synchronous rounds as the new
constraints' influence cone is deep, usually one or two.  With numpy
the rounds themselves vectorise: arcs are pre-sorted by target once
and each round is a gather + ``minimum.reduceat`` + scatter.  Either
way a round still updating after |V| rounds is the classic negative-
cycle certificate.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from .. import obs
from ..graph.retiming_graph import HOST
from .compiled_graph import HAVE_NUMPY, CompiledGraph

if TYPE_CHECKING:  # pragma: no cover - avoids a retime<->kernels cycle
    from ..retime.constraints import DifferenceSystem

if HAVE_NUMPY:  # pragma: no branch - container ships numpy
    import numpy as _np
else:  # pragma: no cover - exercised via the forced-list tests
    _np = None

#: Below this arc count the numpy round overhead beats its win.
_NUMPY_MIN_ARCS = 192


class CompiledSystem:
    """A difference-constraint system over integer vertex ids."""

    __slots__ = (
        "names",
        "index",
        "n",
        "arc_u",
        "arc_v",
        "arc_b",
        "arcs_from",
        "pair",
        "self_negative",
        "dist",
        "_dirty",
        "host",
        "_bf_m",
        "_bf_order",
        "_bf_av",
        "_bf_seg",
        "_bf_targets",
    )

    def __init__(self, names: list[str], index: dict[str, int]) -> None:
        # the universe is shared with (not copied from) the caller until
        # a variable is appended, at which point it is forked
        self.names = names
        self.index = index
        self.n = len(names)
        # constraint (u, v, b) ≡ r(u) − r(v) ≤ b ≡ relaxation arc v→u
        self.arc_u: list[int] = []
        self.arc_v: list[int] = []
        self.arc_b: list[int] = []
        self.arcs_from: list[list[int]] = [[] for _ in range(self.n)]
        #: (u, v) -> arc slot, insertion-ordered like the dict system
        self.pair: dict[tuple[int, int], int] = {}
        #: a negative self-constraint was recorded (instant infeasibility)
        self.self_negative = False
        #: last solution (shared-source SPFA distances), or None
        self.dist: list[int] | None = None
        #: arc slots added/tightened since the last solve
        self._dirty: list[int] = []
        self.host = index.get(HOST, -1)
        # vectorised-round cache (arcs sorted by target); keyed on the
        # arc count, so it stays valid across copies until either grows
        self._bf_m = -1
        self._bf_order = None
        self._bf_av = None
        self._bf_seg = None
        self._bf_targets = None

    # ------------------------------------------------------------------ #
    # construction

    @classmethod
    def from_system(
        cls, system: DifferenceSystem, cg: CompiledGraph
    ) -> "CompiledSystem":
        """Compile a dict system, using *cg*'s vertex ids as the base
        universe (extra system variables are appended after them)."""
        names = list(cg.names)
        index = dict(cg.index)
        for name in system.variables():
            if name not in index:
                index[name] = len(names)
                names.append(name)
        cs = cls(names, index)
        add = cs.add
        for constraint in system:
            add(index[constraint.u], index[constraint.v], constraint.bound)
        cs._dirty.clear()
        return cs

    def add_variable(self, name: str) -> int:
        """Declare a variable; returns its id."""
        i = self.index.get(name)
        if i is None:
            # fork the universe lazily — the base lists may be shared
            self.names = list(self.names)
            self.index = dict(self.index)
            i = len(self.names)
            self.index[name] = i
            self.names.append(name)
            self.n += 1
            self.arcs_from.append([])
            if self.dist is not None:
                self.dist.append(0)
        return i

    def add(self, u: int, v: int, bound: int) -> bool:
        """Add ``r(u) − r(v) ≤ bound``; True iff it tightened.

        Same semantics as the dict system: keep the minimum bound per
        ordered pair, drop vacuous non-negative self-pairs, record
        negative self-pairs (making the system infeasible).
        """
        if u == v and bound >= 0:
            return False
        key = (u, v)
        slot = self.pair.get(key)
        if slot is not None:
            if self.arc_b[slot] <= bound:
                return False
            self.arc_b[slot] = bound
            self._dirty.append(slot)
            return True
        slot = len(self.arc_b)
        self.pair[key] = slot
        self.arc_u.append(u)
        self.arc_v.append(v)
        self.arc_b.append(bound)
        if u == v:
            self.self_negative = True
        else:
            self.arcs_from[v].append(slot)
        self._dirty.append(slot)
        return True

    def __len__(self) -> int:
        return len(self.arc_b)

    def copy(self) -> "CompiledSystem":
        """Independent copy (shares the name table, forks on growth)."""
        other = CompiledSystem.__new__(CompiledSystem)
        other.names = self.names
        other.index = self.index
        other.n = self.n
        other.arc_u = list(self.arc_u)
        other.arc_v = list(self.arc_v)
        other.arc_b = list(self.arc_b)
        other.arcs_from = [list(a) for a in self.arcs_from]
        other.pair = dict(self.pair)
        other.self_negative = self.self_negative
        other.dist = list(self.dist) if self.dist is not None else None
        other._dirty = list(self._dirty)
        other.host = self.host
        other._bf_m = self._bf_m
        other._bf_order = self._bf_order
        other._bf_av = self._bf_av
        other._bf_seg = self._bf_seg
        other._bf_targets = self._bf_targets
        return other

    # ------------------------------------------------------------------ #
    # solving

    def solve(self) -> list[int] | None:
        """Maximal non-positive solution, or None when infeasible.

        Identical fixed point to ``DifferenceSystem.solve``.  Runs
        incrementally from the previous solution when one exists (the
        unique fixed point makes warm and cold starts agree exactly).
        """
        if self.self_negative:
            return None
        if self.dist is not None and not self._dirty:
            return self.dist
        if _np is not None and len(self.arc_b) >= _NUMPY_MIN_ARCS:
            result = self._solve_vectorized()
        elif self.dist is not None:
            result = self._solve_warm_list()
        else:
            result = self._solve_full()
        self.dist = result
        self._dirty.clear()
        if obs.enabled():
            obs.count("bf.solves")
        return result

    def _solve_full(self) -> list[int] | None:
        """Cold SPFA from the all-zero start (the dict engine's loop)."""
        n = self.n
        arc_u, arc_b = self.arc_u, self.arc_b
        arcs_from = self.arcs_from
        dist = [0] * n
        in_queue = bytearray([1]) * n
        relax_count = [0] * n
        queue: deque[int] = deque(range(n))
        push, pop = queue.append, queue.popleft
        while queue:
            vi = pop()
            in_queue[vi] = 0
            dvi = dist[vi]
            for slot in arcs_from[vi]:
                ui = arc_u[slot]
                nd = dvi + arc_b[slot]
                if nd < dist[ui]:
                    dist[ui] = nd
                    relax_count[ui] += 1
                    if relax_count[ui] > n:
                        if obs.enabled():
                            obs.count("bf.relaxations", sum(relax_count))
                        return None  # negative cycle
                    if not in_queue[ui]:
                        in_queue[ui] = 1
                        push(ui)
        if obs.enabled():
            obs.count("bf.relaxations", sum(relax_count))
            # queue-based SPFA has no synchronous rounds; report the
            # depth an equivalent round-based Bellman-Ford would need
            obs.count("bf.rounds", max(relax_count, default=0) + 1)
        return dist

    def _solve_warm_list(self) -> list[int] | None:
        """Warm Bellman-Ford rounds seeded from the previous solution.

        The previous fixed point upper-bounds the new one (constraints
        only tighten), so in-place rounds converge monotonically within
        |V| sweeps; a round still improving after that proves a negative
        cycle.  Round-robin sweeps avoid the queue-thrash a sparsely
        seeded label-correcting pass suffers when a tightened constraint
        shifts a large region.
        """
        prev = self.dist
        assert prev is not None
        dist = list(prev)
        arc_u, arc_v, arc_b = self.arc_u, self.arc_v, self.arc_b
        m = len(arc_b)
        for rounds in range(1, self.n + 2):
            changed = False
            for slot in range(m):
                nd = dist[arc_v[slot]] + arc_b[slot]
                if nd < dist[arc_u[slot]]:
                    dist[arc_u[slot]] = nd
                    changed = True
            if not changed:
                if obs.enabled():
                    obs.count("bf.rounds", rounds)
                return dist
        if obs.enabled():
            obs.count("bf.rounds", self.n + 1)
        return None  # negative cycle

    def _solve_vectorized(self) -> list[int] | None:
        """Bellman-Ford with vectorised synchronous rounds.

        Arcs are pre-sorted by constrained vertex (cached until the arc
        list grows) so one round is a gather, a segmented minimum and a
        masked scatter.  Warm-starts from the previous solution when one
        exists; an update in round |V|+1 certifies a negative cycle.
        """
        np = _np
        m = len(self.arc_b)
        if self._bf_m != m:
            au = np.asarray(self.arc_u, dtype=np.int64)
            order = np.argsort(au, kind="stable")
            au_s = au[order]
            boundary = np.empty(m, dtype=bool)
            boundary[0] = True
            np.not_equal(au_s[1:], au_s[:-1], out=boundary[1:])
            seg = np.flatnonzero(boundary)
            self._bf_av = np.asarray(self.arc_v, dtype=np.int64)[order]
            # bounds can tighten in place, so re-gather them every solve;
            # only the ordering is cached
            self._bf_seg = seg
            self._bf_targets = au_s[seg]
            self._bf_m = m
            self._bf_order = order
        ab = np.asarray(self.arc_b, dtype=np.int64)[self._bf_order]
        av, seg, targets = self._bf_av, self._bf_seg, self._bf_targets
        if self.dist is not None:
            dist = np.asarray(self.dist, dtype=np.int64)
        else:
            dist = np.zeros(self.n, dtype=np.int64)
        for rounds in range(1, self.n + 2):
            mins = np.minimum.reduceat(dist[av] + ab, seg)
            updated = mins < dist[targets]
            if not updated.any():
                if obs.enabled():
                    obs.count("bf.rounds", rounds)
                return dist.tolist()
            dist[targets[updated]] = mins[updated]
        if obs.enabled():
            obs.count("bf.rounds", self.n + 1)
        return None  # negative cycle

    def negative_cycle(self) -> list[tuple[int, int, int]] | None:
        """Negative-cycle certificate as (u, v, bound) id triples.

        Post-hoc predecessor-tracking Bellman-Ford, run only after
        :meth:`solve` reported infeasibility — the solving rounds stay
        certificate-free.  Consecutive triples chain ``c[i][1] ==
        c[i+1][0]`` around the cycle and the bounds sum negative.
        Returns None when the system is actually feasible.
        """
        for (u, v), slot in self.pair.items():
            if u == v:  # negative self-pair (add() filtered the rest)
                return [(u, v, self.arc_b[slot])]
        n = self.n
        arc_u, arc_v, arc_b = self.arc_u, self.arc_v, self.arc_b
        m = len(arc_b)
        dist = [0] * n
        pred = [-1] * n
        marked = -1
        # virtual-source paths have at most n-1 arcs, so a relaxation in
        # pass n+1 proves a cycle through the relaxed vertex's preds
        for _ in range(n + 1):
            updated = -1
            for slot in range(m):
                nd = dist[arc_v[slot]] + arc_b[slot]
                ui = arc_u[slot]
                if nd < dist[ui]:
                    dist[ui] = nd
                    pred[ui] = slot
                    updated = ui
            if updated < 0:
                return None  # converged: feasible
            marked = updated
        seen: dict[int, int] = {}
        trail: list[int] = []
        node = marked
        while node not in seen:
            seen[node] = len(trail)
            slot = pred[node]
            if slot < 0:  # defensive: should be unreachable
                return None
            trail.append(slot)
            node = arc_v[slot]
        return [
            (arc_u[slot], arc_v[slot], arc_b[slot])
            for slot in trail[seen[node]:]
        ]

    def normalized(self, dist: list[int]) -> list[int]:
        """Shift a solution so the host variable reads 0."""
        shift = dist[self.host] if self.host >= 0 else 0
        if shift:
            return [d - shift for d in dist]
        return list(dist)

    def violated(self, r: list[int]) -> list[tuple[int, int, int]]:
        """Constraints violated by *r* as (u, v, bound) id triples."""
        out = []
        arc_u, arc_v, arc_b = self.arc_u, self.arc_v, self.arc_b
        for slot in range(len(arc_b)):
            if r[arc_u[slot]] - r[arc_v[slot]] > arc_b[slot]:
                out.append((arc_u[slot], arc_v[slot], arc_b[slot]))
        return out
