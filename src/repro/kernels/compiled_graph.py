"""Interned, integer-indexed form of a :class:`RetimingGraph` (CSR).

The dict-based graph is ideal for construction and transformation but
terrible for the retiming hot loops: every CP/Δ sweep, every SPFA
relaxation and every min-cost-flow build re-hashes vertex-name strings
millions of times.  ``compile_graph`` walks the graph once and produces
flat integer arrays:

* ``names`` / ``index`` — the vertex interning table (ids follow the
  graph's vertex insertion order, so kernel iteration order matches the
  dict implementations exactly — a requirement for the differential
  test mode, which demands bit-identical results);
* ``eu/ev/ew`` — per-edge source / target / weight arrays in edge
  *insertion* order (the order ``graph.edges.values()`` yields, which
  the dict sweeps iterate);
* CSR adjacency (``out_start``/``out_edges`` and ``in_start`` /
  ``in_edges``) for incremental cone traversals.

When numpy is importable the edge arrays are mirrored as ``int64``
ndarrays so per-sweep retimed-weight evaluation vectorises; otherwise
the kernels fall back to the plain list form (same results, smaller
constant factor win).

A compiled graph is a *snapshot*: mutating the source graph (including
in-place ``edge.w`` edits, which mc-steps perform) invalidates it.
Callers compile once per solver invocation, which is exactly the
pattern the retiming loops need — one compile, thousands of sweeps.
"""

from __future__ import annotations

from .. import obs
from ..graph.retiming_graph import HOST, RetimingGraph

try:  # pragma: no cover - exercised implicitly everywhere
    import numpy as _np
except ImportError:  # pragma: no cover - the fallback path is tested via lists
    _np = None

#: Module-level switch so tests can force the list fallback.
HAVE_NUMPY = _np is not None


class CompiledGraph:
    """Flat integer-array snapshot of a retiming graph."""

    __slots__ = (
        "n",
        "m",
        "names",
        "index",
        "delay",
        "movable",
        "is_mirror",
        "host",
        "through_host",
        "eu",
        "ev",
        "ew",
        "src_host",
        "out_start",
        "out_edges",
        "in_start",
        "in_edges",
        "eu_np",
        "ev_np",
        "ew_np",
        "src_host_np",
    )

    def r_array(self, r: dict[str, int] | None) -> list[int]:
        """Densify a (possibly partial) retiming dict into an id-indexed list."""
        out = [0] * self.n
        if r:
            index = self.index
            for name, value in r.items():
                i = index.get(name)
                if i is not None and value:
                    out[i] = value
        return out

    def r_dict(self, r: list[int]) -> dict[str, int]:
        """Inverse of :meth:`r_array`, preserving vertex insertion order."""
        names = self.names
        return {names[i]: r[i] for i in range(self.n)}


def compile_graph(graph: RetimingGraph) -> CompiledGraph:
    """Snapshot *graph* into a :class:`CompiledGraph`."""
    obs.count("kernels.compile_graph")
    cg = CompiledGraph()
    names = list(graph.vertices)
    index = {name: i for i, name in enumerate(names)}
    n = len(names)
    cg.n = n
    cg.names = names
    cg.index = index
    cg.delay = [graph.vertices[name].delay for name in names]
    cg.movable = bytearray(
        1 if graph.vertices[name].movable else 0 for name in names
    )
    cg.is_mirror = bytearray(
        1 if graph.vertices[name].kind == "mirror" else 0 for name in names
    )
    cg.host = index.get(HOST, -1)
    cg.through_host = graph.combinational_host

    # edge arrays in the same order the dict sweeps iterate
    eu: list[int] = []
    ev: list[int] = []
    ew: list[int] = []
    src_host = bytearray()
    for edge in graph.edges.values():
        ui = index[edge.u]
        eu.append(ui)
        ev.append(index[edge.v])
        ew.append(edge.w)
        src_host.append(1 if graph.vertices[edge.u].kind == "host" else 0)
    m = len(eu)
    cg.m = m
    cg.eu = eu
    cg.ev = ev
    cg.ew = ew
    cg.src_host = src_host

    # CSR adjacency (edge indices), per-vertex lists in edge order
    out_count = [0] * n
    in_count = [0] * n
    for k in range(m):
        out_count[eu[k]] += 1
        in_count[ev[k]] += 1
    out_start = [0] * (n + 1)
    in_start = [0] * (n + 1)
    for i in range(n):
        out_start[i + 1] = out_start[i] + out_count[i]
        in_start[i + 1] = in_start[i] + in_count[i]
    out_edges = [0] * m
    in_edges = [0] * m
    out_fill = list(out_start[:n])
    in_fill = list(in_start[:n])
    for k in range(m):
        u, v = eu[k], ev[k]
        out_edges[out_fill[u]] = k
        out_fill[u] += 1
        in_edges[in_fill[v]] = k
        in_fill[v] += 1
    cg.out_start = out_start
    cg.out_edges = out_edges
    cg.in_start = in_start
    cg.in_edges = in_edges

    if _np is not None and m:
        cg.eu_np = _np.asarray(eu, dtype=_np.int64)
        cg.ev_np = _np.asarray(ev, dtype=_np.int64)
        cg.ew_np = _np.asarray(ew, dtype=_np.int64)
        cg.src_host_np = _np.frombuffer(bytes(src_host), dtype=_np.uint8) != 0
    else:
        cg.eu_np = cg.ev_np = cg.ew_np = cg.src_host_np = None
    return cg
