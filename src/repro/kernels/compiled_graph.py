"""Interned, integer-indexed form of a :class:`RetimingGraph` (CSR).

The dict-based graph is ideal for construction and transformation but
terrible for the retiming hot loops: every CP/Δ sweep, every SPFA
relaxation and every min-cost-flow build re-hashes vertex-name strings
millions of times.  ``compile_graph`` walks the graph once and produces
flat integer arrays:

* ``names`` / ``index`` — the vertex interning table (ids follow the
  graph's vertex insertion order, so kernel iteration order matches the
  dict implementations exactly — a requirement for the differential
  test mode, which demands bit-identical results);
* ``eu/ev/ew`` — per-edge source / target / weight arrays in edge
  *insertion* order (the order ``graph.edges.values()`` yields, which
  the dict sweeps iterate);
* CSR adjacency (``out_start``/``out_edges`` and ``in_start`` /
  ``in_edges``) for incremental cone traversals.

When numpy is importable the edge arrays are mirrored as ``int64``
ndarrays so per-sweep retimed-weight evaluation vectorises; otherwise
the kernels fall back to the plain list form (same results, smaller
constant factor win).

A compiled graph is a *snapshot*: mutating the source graph (including
in-place ``edge.w`` edits, which mc-steps perform) invalidates it.
Callers compile once per solver invocation, which is exactly the
pattern the retiming loops need — one compile, thousands of sweeps.

Interning across processes
--------------------------
A snapshot is pure flat data, so it can cross process boundaries
without pickling: :meth:`CompiledGraph.to_buffer` packs every array
into one contiguous ``bytes`` blob and :func:`graph_from_buffer`
reconstructs a graph whose numpy mirrors are **zero-copy views into
the buffer** — point it at a ``multiprocessing.shared_memory`` mapping
and every worker shares one physical copy of the CSR arrays.

The service layer uses this through the **intern-seed cache**: the
serving front-end compiles a design's work graph once, publishes the
buffer in a shared-memory segment, and workers call
:func:`seed_intern` with the attached snapshot.  A later
:func:`compile_graph` call on a graph tagged with the matching
``intern_key`` attribute returns the seeded snapshot instead of
re-walking the dict graph.  Seeds are consumed at most once per graph
*instance* (recompiles of a mutated graph always take the full path),
and a seed whose vertex/edge counts disagree with the tagged graph is
ignored — results are bit-identical with or without seeding, which
``tests/service/test_interning.py`` enforces field by field.
"""

from __future__ import annotations

import json
import struct

from .. import obs
from ..graph.retiming_graph import HOST, RetimingGraph

try:  # pragma: no cover - exercised implicitly everywhere
    import numpy as _np
except ImportError:  # pragma: no cover - the fallback path is tested via lists
    _np = None

#: Module-level switch so tests can force the list fallback.
HAVE_NUMPY = _np is not None


class CompiledGraph:
    """Flat integer-array snapshot of a retiming graph."""

    __slots__ = (
        "n",
        "m",
        "names",
        "index",
        "delay",
        "movable",
        "is_mirror",
        "host",
        "through_host",
        "eu",
        "ev",
        "ew",
        "src_host",
        "out_start",
        "out_edges",
        "in_start",
        "in_edges",
        "eu_np",
        "ev_np",
        "ew_np",
        "src_host_np",
    )

    def r_array(self, r: dict[str, int] | None) -> list[int]:
        """Densify a (possibly partial) retiming dict into an id-indexed list."""
        out = [0] * self.n
        if r:
            index = self.index
            for name, value in r.items():
                i = index.get(name)
                if i is not None and value:
                    out[i] = value
        return out

    def r_dict(self, r: list[int]) -> dict[str, int]:
        """Inverse of :meth:`r_array`, preserving vertex insertion order."""
        names = self.names
        return {names[i]: r[i] for i in range(self.n)}

    # -- flat-buffer interning (shared-memory transport) ---------------

    def to_buffer(self) -> bytes:
        """Pack the snapshot into one contiguous ``bytes`` blob.

        Requires numpy (the list fallback has no flat representation
        worth sharing).  Layout: an 8-byte little-endian header length,
        a JSON header (scalars + section lengths), then 8-byte-aligned
        sections: NUL-joined vertex names, ``float64`` delays, three
        ``uint8`` flag arrays, and the seven ``int64`` edge/CSR arrays.
        """
        if _np is None:  # pragma: no cover - numpy is a hard dep in CI
            raise RuntimeError("CompiledGraph.to_buffer requires numpy")
        names_blob = "\x00".join(self.names).encode()
        sections = [
            names_blob,
            _np.asarray(self.delay, dtype=_np.float64).tobytes(),
            bytes(self.movable),
            bytes(self.is_mirror),
            bytes(self.src_host),
            _np.asarray(self.eu, dtype=_np.int64).tobytes(),
            _np.asarray(self.ev, dtype=_np.int64).tobytes(),
            _np.asarray(self.ew, dtype=_np.int64).tobytes(),
            _np.asarray(self.out_start, dtype=_np.int64).tobytes(),
            _np.asarray(self.out_edges, dtype=_np.int64).tobytes(),
            _np.asarray(self.in_start, dtype=_np.int64).tobytes(),
            _np.asarray(self.in_edges, dtype=_np.int64).tobytes(),
        ]
        header = json.dumps(
            {
                "v": 1,
                "n": self.n,
                "m": self.m,
                "host": self.host,
                "through_host": bool(self.through_host),
                "lens": [len(s) for s in sections],
            }
        ).encode()
        parts = [struct.pack("<Q", len(header)), header]
        offset = 8 + len(header)
        for section in sections:
            pad = (-offset) % 8
            parts.append(b"\x00" * pad)
            parts.append(section)
            offset += pad + len(section)
        return b"".join(parts)


def graph_from_buffer(buffer) -> CompiledGraph:
    """Rebuild a :class:`CompiledGraph` from :meth:`~CompiledGraph.to_buffer`.

    *buffer* may be ``bytes`` or a ``memoryview`` over a shared-memory
    mapping; the numpy edge mirrors are zero-copy views into it (keep
    the mapping alive as long as the graph), while the list forms are
    materialised per process.
    """
    if _np is None:  # pragma: no cover - numpy is a hard dep in CI
        raise RuntimeError("graph_from_buffer requires numpy")
    view = memoryview(buffer)
    (header_len,) = struct.unpack("<Q", bytes(view[:8]))
    header = json.loads(bytes(view[8:8 + header_len]).decode())
    if header.get("v") != 1:
        raise ValueError(f"unknown compiled-graph buffer version {header.get('v')!r}")
    cg = CompiledGraph()
    cg.n = n = header["n"]
    cg.m = m = header["m"]
    cg.host = header["host"]
    cg.through_host = header["through_host"]

    sections = []
    offset = 8 + header_len
    for length in header["lens"]:
        offset += (-offset) % 8
        sections.append(view[offset:offset + length])
        offset += length
    (names_blob, delay, movable, is_mirror, src_host,
     eu, ev, ew, out_start, out_edges, in_start, in_edges) = sections

    cg.names = bytes(names_blob).decode().split("\x00") if n else []
    cg.index = {name: i for i, name in enumerate(cg.names)}
    cg.delay = _np.frombuffer(delay, dtype=_np.float64).tolist()
    cg.movable = bytearray(movable)
    cg.is_mirror = bytearray(is_mirror)
    cg.src_host = bytearray(src_host)
    if m:
        cg.eu_np = _np.frombuffer(eu, dtype=_np.int64)
        cg.ev_np = _np.frombuffer(ev, dtype=_np.int64)
        cg.ew_np = _np.frombuffer(ew, dtype=_np.int64)
        cg.src_host_np = _np.frombuffer(src_host, dtype=_np.uint8) != 0
    else:
        cg.eu_np = cg.ev_np = cg.ew_np = cg.src_host_np = None
    cg.eu = _np.frombuffer(eu, dtype=_np.int64).tolist()
    cg.ev = _np.frombuffer(ev, dtype=_np.int64).tolist()
    cg.ew = _np.frombuffer(ew, dtype=_np.int64).tolist()
    cg.out_start = _np.frombuffer(out_start, dtype=_np.int64).tolist()
    cg.out_edges = _np.frombuffer(out_edges, dtype=_np.int64).tolist()
    cg.in_start = _np.frombuffer(in_start, dtype=_np.int64).tolist()
    cg.in_edges = _np.frombuffer(in_edges, dtype=_np.int64).tolist()
    return cg


#: process-local intern-seed cache: intern key -> pre-built snapshot
_INTERN_SEEDS: dict[str, CompiledGraph] = {}
#: hit/miss accounting for tests and the bench phase breakdown
intern_stats = {"seeded": 0, "hits": 0, "misses": 0}


def seed_intern(key: str, cg: CompiledGraph) -> None:
    """Install *cg* as the pre-compiled snapshot for ``intern_key``."""
    _INTERN_SEEDS[key] = cg
    intern_stats["seeded"] += 1


def unseed_intern(key: str) -> None:
    """Drop one seeded snapshot (the ECO path seeds per-edit keys and
    releases them after the solve)."""
    _INTERN_SEEDS.pop(key, None)


def clear_intern_seeds() -> None:
    _INTERN_SEEDS.clear()
    intern_stats.update(seeded=0, hits=0, misses=0)


def compile_graph(graph: RetimingGraph) -> CompiledGraph:
    """Snapshot *graph* into a :class:`CompiledGraph`.

    If *graph* carries an ``intern_key`` attribute naming a seeded
    snapshot (see :func:`seed_intern`) and this is the instance's first
    compile, the seed is returned instead of re-walking the graph —
    recompiles after mutation always take the full path.
    """
    key = getattr(graph, "intern_key", None)
    if key is not None and not getattr(graph, "_intern_consumed", False):
        graph._intern_consumed = True
        seed = _INTERN_SEEDS.get(key)
        if (
            seed is not None
            and seed.n == len(graph.vertices)
            and seed.m == len(graph.edges)
        ):
            obs.count("kernels.intern.hit")
            intern_stats["hits"] += 1
            return seed
        obs.count("kernels.intern.miss")
        intern_stats["misses"] += 1
    obs.count("kernels.compile_graph")
    cg = CompiledGraph()
    names = list(graph.vertices)
    index = {name: i for i, name in enumerate(names)}
    n = len(names)
    cg.n = n
    cg.names = names
    cg.index = index
    cg.delay = [graph.vertices[name].delay for name in names]
    cg.movable = bytearray(
        1 if graph.vertices[name].movable else 0 for name in names
    )
    cg.is_mirror = bytearray(
        1 if graph.vertices[name].kind == "mirror" else 0 for name in names
    )
    cg.host = index.get(HOST, -1)
    cg.through_host = graph.combinational_host

    # edge arrays in the same order the dict sweeps iterate
    eu: list[int] = []
    ev: list[int] = []
    ew: list[int] = []
    src_host = bytearray()
    for edge in graph.edges.values():
        ui = index[edge.u]
        eu.append(ui)
        ev.append(index[edge.v])
        ew.append(edge.w)
        src_host.append(1 if graph.vertices[edge.u].kind == "host" else 0)
    m = len(eu)
    cg.m = m
    cg.eu = eu
    cg.ev = ev
    cg.ew = ew
    cg.src_host = src_host

    # CSR adjacency (edge indices), per-vertex lists in edge order
    out_count = [0] * n
    in_count = [0] * n
    for k in range(m):
        out_count[eu[k]] += 1
        in_count[ev[k]] += 1
    out_start = [0] * (n + 1)
    in_start = [0] * (n + 1)
    for i in range(n):
        out_start[i + 1] = out_start[i] + out_count[i]
        in_start[i + 1] = in_start[i] + in_count[i]
    out_edges = [0] * m
    in_edges = [0] * m
    out_fill = list(out_start[:n])
    in_fill = list(in_start[:n])
    for k in range(m):
        u, v = eu[k], ev[k]
        out_edges[out_fill[u]] = k
        out_fill[u] += 1
        in_edges[in_fill[v]] = k
        in_fill[v] += 1
    cg.out_start = out_start
    cg.out_edges = out_edges
    cg.in_start = in_start
    cg.in_edges = in_edges

    if _np is not None and m:
        cg.eu_np = _np.asarray(eu, dtype=_np.int64)
        cg.ev_np = _np.asarray(ev, dtype=_np.int64)
        cg.ew_np = _np.asarray(ew, dtype=_np.int64)
        cg.src_host_np = _np.frombuffer(bytes(src_host), dtype=_np.uint8) != 0
    else:
        cg.eu_np = cg.ev_np = cg.ew_np = cg.src_host_np = None
    return cg
