"""Compiled integer-indexed kernels for the retiming hot loops.

The dict-based implementations in :mod:`repro.retime` and
:mod:`repro.timing` are the readable reference engines; this package
holds their compiled counterparts: a graph is interned once into flat
index arrays (:mod:`.compiled_graph`) and the four hot sweeps — CP/Δ
(:mod:`.delta`), the difference-constraint solver (:mod:`.diffsys`),
min-cost flow (:mod:`.mcf`) and STA (:mod:`.sta`) — run over integers
with incremental re-evaluation between lazy-constraint rounds.
:mod:`.sim` is the bit-parallel sequential simulator the verification
subsystem runs on: 64 stimulus lanes per Python-int word over an
interned netlist, with full generic-register (EN/SR/AR) and ternary
semantics.

Every kernel replicates its oracle bit-for-bit (iteration orders, tie
breaking, float addition order), so flipping the flag never changes a
result — only how fast it arrives.

Control surface
---------------
* ``REPRO_USE_KERNELS=0`` env var (or :func:`set_kernels_enabled`)
  falls back to the dict engines everywhere.
* ``REPRO_KERNEL_CHECK=1`` (or :func:`set_kernel_check`) enables the
  differential mode: every kernel call *also* runs its dict oracle and
  asserts identical results.  Slow; meant for tests and debugging.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from .compiled_graph import (
    HAVE_NUMPY,
    CompiledGraph,
    clear_intern_seeds,
    compile_graph,
    graph_from_buffer,
    intern_stats,
    seed_intern,
    unseed_intern,
)
from .delta import KernelSweep, delta_sweep, refresh
from .diffsys import CompiledSystem
from .mcf import IntMinCostFlow
from .minarea import min_area_kernel
from .minperiod import check_period_kernel, min_period_kernel
from .sim import (
    BitSimulator,
    CompiledCircuit,
    broadcast,
    compile_circuit,
    pack_lanes,
    pack_vectors,
    unpack_lane,
)
from .sta import CompiledSTA, analyze_kernel

_enabled = os.environ.get("REPRO_USE_KERNELS", "1") != "0"
_check = os.environ.get("REPRO_KERNEL_CHECK", "0") == "1"


class KernelMismatchError(AssertionError):
    """Differential mode found a kernel/oracle disagreement (a bug)."""


def kernels_enabled() -> bool:
    """Whether the compiled kernels are the active engine."""
    return _enabled


def set_kernels_enabled(flag: bool) -> bool:
    """Flip the global kernel switch; returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def kernel_check_enabled() -> bool:
    """Whether differential (kernel vs oracle) checking is on."""
    return _check


def set_kernel_check(flag: bool) -> bool:
    """Flip differential checking; returns the previous value."""
    global _check
    previous = _check
    _check = bool(flag)
    return previous


def resolve(use_kernels: bool | None) -> bool:
    """Resolve a per-call ``use_kernels`` override against the global."""
    return _enabled if use_kernels is None else bool(use_kernels)


@contextmanager
def use_kernels(flag: bool):
    """Context manager scoping the global kernel switch."""
    previous = set_kernels_enabled(flag)
    try:
        yield
    finally:
        set_kernels_enabled(previous)


def expect_equal(what: str, kernel_value, oracle_value) -> None:
    """Differential-mode assertion with a readable diagnostic."""
    if kernel_value != oracle_value:
        raise KernelMismatchError(
            f"kernel/oracle mismatch in {what}: "
            f"kernel={kernel_value!r} oracle={oracle_value!r}"
        )


__all__ = [
    "HAVE_NUMPY",
    "BitSimulator",
    "CompiledCircuit",
    "CompiledGraph",
    "CompiledSTA",
    "CompiledSystem",
    "IntMinCostFlow",
    "KernelMismatchError",
    "KernelSweep",
    "analyze_kernel",
    "broadcast",
    "check_period_kernel",
    "clear_intern_seeds",
    "compile_circuit",
    "compile_graph",
    "graph_from_buffer",
    "intern_stats",
    "seed_intern",
    "unseed_intern",
    "delta_sweep",
    "pack_lanes",
    "pack_vectors",
    "unpack_lane",
    "expect_equal",
    "kernel_check_enabled",
    "kernels_enabled",
    "min_area_kernel",
    "min_period_kernel",
    "refresh",
    "resolve",
    "set_kernel_check",
    "set_kernels_enabled",
    "use_kernels",
]
