"""Tests for delay models and static timing analysis."""

import pytest

from repro.netlist import Circuit, Gate, GateFn
from repro.timing import (
    UNIT_DELAY,
    XC4000E_DELAY,
    DelayModel,
    analyze,
    combinational_depth,
)


def chain(n: int) -> Circuit:
    c = Circuit("chain")
    c.add_input("a")
    prev = "a"
    for i in range(n):
        prev = c.add_gate(GateFn.NOT, [prev]).output
    c.add_output(prev)
    return c


class TestDelayModels:
    def test_unit(self):
        g = Gate("g", GateFn.AND, ["a", "b"], "y")
        assert UNIT_DELAY.gate_delay(g) == 1.0
        assert UNIT_DELAY.net_delay(5) == 0.0

    def test_xc4000e_lut_vs_inverter(self):
        lut = Gate("g", GateFn.AND, ["a", "b"], "y")
        inv = Gate("i", GateFn.NOT, ["a"], "z")
        assert XC4000E_DELAY.gate_delay(lut) > XC4000E_DELAY.gate_delay(inv)

    def test_net_delay_grows_with_fanout(self):
        assert XC4000E_DELAY.net_delay(4) > XC4000E_DELAY.net_delay(1)
        assert XC4000E_DELAY.net_delay(0) == 0.0

    def test_custom_model(self):
        m = DelayModel(base_gate_delay=2.0, net_base=0.5, net_per_fanout=0.25)
        assert m.net_delay(3) == 0.5 + 0.5


class TestAnalyze:
    def test_chain_depth(self):
        res = analyze(chain(5), UNIT_DELAY)
        assert res.max_delay == pytest.approx(5.0)
        assert res.critical_sink == res.critical_path[-1]
        assert len(res.critical_path) == 6  # input + 5 gate outputs

    def test_empty_circuit(self):
        c = Circuit()
        c.add_input("a")
        c.add_output("a")
        assert analyze(c).max_delay == 0.0

    def test_register_breaks_path(self):
        c = Circuit("regs")
        c.add_input("a")
        c.add_input("clk")
        n1 = c.add_gate(GateFn.NOT, ["a"]).output
        r = c.add_register(d=n1, clk="clk")
        n2 = c.add_gate(GateFn.NOT, [r.q]).output
        c.add_output(n2)
        res = analyze(c, UNIT_DELAY)
        # two separate 1-gate paths, not one 2-gate path
        assert res.max_delay == pytest.approx(1.0)

    def test_clock_to_q_and_setup_counted(self):
        c = Circuit("regs")
        c.add_input("clk")
        c.add_input("a")
        r1 = c.add_register(d="a", clk="clk")
        n = c.add_gate(GateFn.NOT, [r1.q]).output
        c.add_register(d=n, clk="clk")
        res = analyze(c, XC4000E_DELAY)
        expected = (
            XC4000E_DELAY.clock_to_q
            + 0.6  # inverter
            + XC4000E_DELAY.net_delay(1)
            + XC4000E_DELAY.setup
        )
        assert res.max_delay == pytest.approx(expected)

    def test_control_pins_are_sinks(self):
        c = Circuit("en")
        c.add_input("clk")
        c.add_input("a")
        c.add_input("d")
        en = c.add_gate(GateFn.AND, ["a", "a"]).output
        c.add_register(d="d", clk="clk", en=en)
        res = analyze(c, UNIT_DELAY)
        assert res.max_delay == pytest.approx(1.0)
        assert res.critical_sink == en

    def test_async_pin_no_setup(self):
        c = Circuit("ar")
        c.add_input("clk")
        c.add_input("a")
        c.add_input("d")
        arn = c.add_gate(GateFn.NOT, ["a"]).output
        c.add_register(d="d", clk="clk", ar=arn, aval=0)
        res = analyze(c, XC4000E_DELAY)
        assert res.max_delay == pytest.approx(0.6 + XC4000E_DELAY.net_delay(1))

    def test_critical_path_is_consistent(self):
        c = chain(7)
        res = analyze(c, UNIT_DELAY)
        ats = [res.arrival[n] for n in res.critical_path]
        assert ats == sorted(ats)

    def test_fanout_penalty(self):
        c = Circuit("fan")
        c.add_input("a")
        g = c.add_gate(GateFn.NOT, ["a"], "n")
        for i in range(4):
            c.add_output(c.add_gate(GateFn.NOT, ["n"]).output)
        res = analyze(c, XC4000E_DELAY)
        # the first inverter's net drives 4 sinks
        assert res.arrival["n"] == pytest.approx(0.6 + XC4000E_DELAY.net_delay(4))


class TestDepth:
    def test_depth(self):
        assert combinational_depth(chain(9)) == 9

    def test_depth_registers(self):
        c = Circuit()
        c.add_input("clk")
        c.add_input("a")
        n1 = c.add_gate(GateFn.NOT, ["a"]).output
        r = c.add_register(d=n1, clk="clk")
        n2 = c.add_gate(GateFn.NOT, [r.q]).output
        n3 = c.add_gate(GateFn.NOT, [n2]).output
        c.add_output(n3)
        assert combinational_depth(c) == 2
