"""Engine option combinations and small accessor coverage."""

import pytest

from repro.graph import build_mcgraph
from repro.mcretime import Classifier, compute_bounds, mc_retime
from repro.netlist import Circuit, GateFn, check_circuit


def buffered_enable_circuit() -> Circuit:
    """Two registers whose enables are logically equal but structurally
    different — semantic classification sees one class, syntactic two."""
    c = Circuit("opt")
    for net in ("clk", "en", "a", "b"):
        c.add_input(net)
    c.add_gate(GateFn.BUF, ["en"], "en2", name="buf")
    c.add_register(d="a", q="qa", clk="clk", en="en", name="ra")
    c.add_register(d="b", q="qb", clk="clk", en="en2", name="rb")
    n1 = c.add_gate(GateFn.AND, ["qa", "qb"], "n1", name="g1").output
    n2 = c.add_gate(GateFn.NOT, [n1], "n2", name="g2").output
    n3 = c.add_gate(GateFn.XOR, [n2, n1], "n3", name="g3").output
    c.add_register(d=n3, q="qo", clk="clk", en="en", name="ro")
    c.add_output("qo")
    return c


class TestEngineOptions:
    def test_semantic_beats_syntactic(self):
        c = buffered_enable_circuit()
        semantic = mc_retime(c, semantic_classes=True)
        syntactic = mc_retime(c, semantic_classes=False)
        check_circuit(semantic.circuit)
        check_circuit(syntactic.circuit)
        assert semantic.n_classes < syntactic.n_classes
        # syntactic classes can only restrict, never improve
        assert semantic.period_after <= syntactic.period_after + 1e-9

    def test_verify_resets_flag(self):
        c = buffered_enable_circuit()
        result = mc_retime(c, verify_resets=False)
        check_circuit(result.circuit)

    def test_result_repr_fields(self):
        c = buffered_enable_circuit()
        result = mc_retime(c)
        assert result.ff_before == 3
        assert result.area_registers is not None
        assert result.resolve_attempts == 0


class TestBoundsAccessors:
    def test_r_min_r_max_helpers(self):
        c = buffered_enable_circuit()
        classifier = Classifier(c)
        graph = build_mcgraph(c, classify=classifier.classify).graph
        bounds = compute_bounds(graph)
        for name in ("g1", "g2", "g3"):
            assert bounds.r_min(name) <= 0 <= bounds.r_max(name)
        # unknown vertices default to the immovable range
        assert bounds.r_min("nope") == 0
        assert bounds.r_max("nope") == 0
