"""Tests for maximal-retiming bounds (Sec. 4.1) and the sharing
transform with separation vertices (Sec. 4.2, Eq. 3)."""

import pytest

from repro.graph import HOST, RegInstance, RetimingGraph, build_mcgraph
from repro.mcretime import (
    BoundsError,
    apply_sharing_transform,
    compute_bounds,
)
from repro.netlist import Circuit, GateFn


def pipeline_circuit(same_class: bool = True) -> Circuit:
    """in -> r1 -> g1 -> g2 -> r2 -> out (registers maybe different class)."""
    c = Circuit("pipe")
    c.add_input("clk")
    c.add_input("a")
    c.add_input("e1")
    c.add_input("e2")
    r1 = c.add_register(d="a", q="q1", clk="clk", en="e1", name="r1")
    c.add_gate(GateFn.NOT, ["q1"], "n1", name="g1")
    c.add_gate(GateFn.NOT, ["n1"], "n2", name="g2")
    c.add_register(
        d="n2", q="q2", clk="clk", en="e1" if same_class else "e2", name="r2"
    )
    c.add_output("q2")
    return c


class TestBounds:
    def test_pipeline_same_class(self):
        res = build_mcgraph(pipeline_circuit(True))
        b = compute_bounds(res.graph)
        # r1 can cross each gate forward once; r2 can cross each gate
        # backward once (coming off the output edge)
        assert b.bounds["g1"] == (-1, 1)
        assert b.bounds["g2"] == (-1, 1)
        assert b.steps_possible == 4

    def test_pipeline_mixed_class_blocks_nothing_single_input(self):
        # single-input gates: layers never mix classes, so both registers
        # still move; bounds equal the same-class case
        res = build_mcgraph(pipeline_circuit(False))
        b = compute_bounds(res.graph)
        assert b.bounds["g1"][1] == 1

    def test_mixed_class_blocks_multi_input_gate(self):
        c = Circuit()
        c.add_input("clk")
        c.add_input("a")
        c.add_input("b")
        c.add_input("e1")
        c.add_input("e2")
        c.add_register(d="a", q="qa", clk="clk", en="e1")
        c.add_register(d="b", q="qb", clk="clk", en="e2")
        c.add_gate(GateFn.AND, ["qa", "qb"], "y", name="g")
        c.add_output("y")
        res = build_mcgraph(c)
        b = compute_bounds(res.graph)
        assert b.bounds["g"] == (0, 0)  # incompatible layer: no moves

    def test_same_class_multi_input_gate_moves(self):
        c = Circuit()
        c.add_input("clk")
        c.add_input("a")
        c.add_input("b")
        c.add_input("e1")
        c.add_register(d="a", q="qa", clk="clk", en="e1")
        c.add_register(d="b", q="qb", clk="clk", en="e1")
        c.add_gate(GateFn.AND, ["qa", "qb"], "y", name="g")
        c.add_output("y")
        res = build_mcgraph(c)
        b = compute_bounds(res.graph)
        assert b.bounds["g"] == (-1, 0)

    def test_control_output_vertex_blocks_enable_cone(self):
        """The gate generating an enable cannot be retimed across."""
        c = Circuit()
        c.add_input("clk")
        c.add_input("a")
        c.add_input("e1")
        c.add_input("e2")
        c.add_gate(GateFn.AND, ["e1", "e2"], "en", name="gen")
        c.add_register(d="a", q="q", clk="clk", en="en", name="r")
        c.add_gate(GateFn.NOT, ["q"], "y", name="g")
        c.add_output("y")
        res = build_mcgraph(c)
        b = compute_bounds(res.graph)
        # 'gen' drives the ctrl output vertex through a 0-weight edge in
        # both directions: no layer can ever cross it
        assert b.bounds["gen"] == (0, 0)

    def test_bounds_do_not_mutate_input(self):
        res = build_mcgraph(pipeline_circuit(True))
        before = {e.eid: e.w for e in res.graph.iter_edges()}
        compute_bounds(res.graph)
        after = {e.eid: e.w for e in res.graph.iter_edges()}
        assert before == after

    def test_dead_ring_raises(self):
        g = RetimingGraph()
        g.add_vertex("a", 1.0)
        g.add_vertex("b", 1.0)
        g.add_edge("a", "b", 1, [RegInstance(0)])
        g.add_edge("b", "a", 0, [])
        with pytest.raises(BoundsError):
            compute_bounds(g, move_cap=50)

    def test_toggle_loop_forward_capped(self):
        """A toggle flip-flop (INV loop with a tap) admits unboundedly
        many forward steps; the per-vertex cap keeps bounds finite."""
        c = Circuit()
        c.add_input("clk")
        c.add_gate(GateFn.NOT, ["q"], "d", name="inv")
        c.add_register(d="d", q="q", clk="clk", name="r")
        c.add_output("q")
        res = build_mcgraph(c)
        b = compute_bounds(res.graph, per_vertex_cap=5)
        lo, hi = b.bounds["inv"]
        assert lo == -5  # capped, not -inf
        assert hi >= 0


def sharing_graph() -> tuple[RetimingGraph, dict]:
    """Paper Fig. 4-style example: u fans out two register sequences
    [C1, C1] and [C1, C2]; naive shared count 2, true cost 3."""
    g = RetimingGraph("fig4")
    g.add_host()
    g.add_vertex("u", 1.0)
    g.add_vertex("v1", 1.0)
    g.add_vertex("v2", 1.0)
    g.add_vertex("o1", 0.0, "output")
    g.add_vertex("o2", 0.0, "output")
    g.add_edge(HOST, "u", 0)
    g.add_edge("u", "v1", 2, [RegInstance(1), RegInstance(1)])
    g.add_edge("u", "v2", 2, [RegInstance(1), RegInstance(2)])
    g.add_edge("v1", "o1", 0, [])
    g.add_edge("v2", "o2", 0, [])
    g.add_edge("o1", HOST, 0)
    g.add_edge("o2", HOST, 0)
    bounds = {"u": (0, 0), "v1": (0, 0), "v2": (0, 0)}
    return g, bounds


class TestSharingTransform:
    def test_cutline_and_separation(self):
        g, bounds = sharing_graph()
        res = apply_sharing_transform(g, bounds, g.copy())
        assert len(res.separations) == 1
        sep = res.separations[0]
        assert sep.v == "v2"
        assert sep.head_regs == 1 and sep.tail_regs == 1
        # Eq. 3: r_max(s) = max(r_max(v2) - w_b(sep->v2), 0) = 0
        assert sep.r_max == 0
        assert res.bounds[sep.sep] == (sep.r_min, 0)

    def test_modelled_count_is_three(self):
        from repro.retime import shared_register_count

        g, bounds = sharing_graph()
        res = apply_sharing_transform(g, bounds, g.copy())
        # naive count on the unmodified graph under-reports
        assert shared_register_count(g) == 2 + 0  # max(2,2) at u
        # after separation: max(2, 1) at u + 1 unsharable = 3
        assert shared_register_count(res.graph) == 3

    def test_no_separation_when_uniform_classes(self):
        g, bounds = sharing_graph()
        # make all registers class C1
        for e in g.iter_edges():
            if e.regs:
                e.regs = [RegInstance(1) for _ in e.regs]
        res = apply_sharing_transform(g, bounds, g.copy())
        assert res.separations == []
        assert res.graph.total_weight() == g.total_weight()

    def test_registers_preserved_through_split(self):
        g, bounds = sharing_graph()
        res = apply_sharing_transform(g, bounds, g.copy())
        assert res.graph.total_weight() == g.total_weight()
        res.graph.check()

    def test_single_edge_tail_needs_no_separation(self):
        """Layers occupied by only one edge are trivially sharable: the
        L-S max already counts them exactly, so no cut is needed."""
        g = RetimingGraph("tail")
        g.add_host()
        g.add_vertex("u", 1.0)
        g.add_vertex("v1", 1.0)
        g.add_vertex("v2", 1.0)
        g.add_edge(HOST, "u", 0)
        g.add_edge("u", "v1", 1, [RegInstance(1)])
        g.add_edge("u", "v2", 3, [RegInstance(1), RegInstance(2), RegInstance(2)])
        g.add_edge("v1", HOST, 0)
        g.add_edge("v2", HOST, 0)
        bounds = {"u": (0, 0), "v1": (0, 0), "v2": (0, 0)}
        res = apply_sharing_transform(g, bounds, g.copy())
        assert res.separations == []

    def test_eq3_bound_positive_when_rewind_crosses(self):
        """When undoing the maximal backward retiming must pull a
        non-sharable register across the cut, Eq. 3 yields a positive
        separation bound."""
        g = RetimingGraph("eq3")
        g.add_host()
        g.add_vertex("u", 1.0)
        g.add_vertex("v2", 1.0)
        g.add_vertex("v3", 1.0)
        g.add_edge(HOST, "u", 0)
        e2 = g.add_edge("u", "v2", 0, [])
        g.add_edge("u", "v3", 2, [RegInstance(1), RegInstance(1)])
        g.add_edge("v2", HOST, 0)
        g.add_edge("v3", HOST, 0)
        # backward-max graph: v2 moved 2 layers back, its edge showing
        # [C1, C2]; layer 1 contested (C1 on e3 wins) -> e2 nonshar = 1
        bwd = g.copy()
        bwd.edges[e2.eid].regs = [RegInstance(1), RegInstance(2)]
        bwd.edges[e2.eid].w = 2
        bounds = {"u": (0, 0), "v2": (0, 2), "v3": (0, 0)}
        res = apply_sharing_transform(g, bounds, bwd)
        sep = next(s for s in res.separations if s.v == "v2")
        # nonshar=1, r_max(v2)=2 -> Eq.3: r_max(s) = 1 (one register may
        # cross the cut, exactly what rewinding needs)
        assert sep.r_max == 1
        # original edge had no registers at all
        assert sep.head_regs == 0 and sep.tail_regs == 0
