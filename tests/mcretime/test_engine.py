"""End-to-end tests of the six-step mc-retiming engine (Sec. 5)."""

import pytest

from repro.logic.ternary import T0, T1
from repro.mcretime import mc_retime
from repro.netlist import Circuit, GateFn, check_circuit
from repro.timing import UNIT_DELAY, analyze

from .test_relocate import all_vectors, equivalent_after_reset


def deep_enable_pipeline() -> Circuit:
    """Registers at the input of a 4-gate chain; retiming should spread
    them to cut the critical path."""
    c = Circuit("deep")
    for net in ("clk", "en", "rs", "a", "b"):
        c.add_input(net)
    c.add_register(d="a", q="qa", clk="clk", en="en", sr="rs", sval=T0, name="ra")
    c.add_register(d="b", q="qb", clk="clk", en="en", sr="rs", sval=T0, name="rb")
    c.add_gate(GateFn.AND, ["qa", "qb"], "n1", name="g1")
    c.add_gate(GateFn.NOT, ["n1"], "n2", name="g2")
    c.add_gate(GateFn.XOR, ["n2", "qa"], "n3", name="g3")
    c.add_gate(GateFn.OR, ["n3", "n2"], "n4", name="g4")
    c.add_register(d="n4", q="qo", clk="clk", en="en", sr="rs", sval=T0, name="ro")
    c.add_output("qo")
    return c


class TestEngine:
    def test_improves_period(self):
        c = deep_enable_pipeline()
        result = mc_retime(c)
        check_circuit(result.circuit)
        assert result.period_after < result.period_before
        assert result.steps_moved > 0
        assert result.steps_possible >= result.steps_moved

    def test_period_matches_sta(self):
        c = deep_enable_pipeline()
        result = mc_retime(c)
        sta = analyze(result.circuit, UNIT_DELAY)
        assert sta.max_delay == pytest.approx(result.period_after)

    def test_single_class(self):
        result = mc_retime(deep_enable_pipeline())
        assert result.n_classes == 1

    def test_equivalence(self):
        c = deep_enable_pipeline()
        result = mc_retime(c)
        assert equivalent_after_reset(
            c, result.circuit, "rs", all_vectors(["en", "a", "b"], 24)
        )

    def test_minperiod_objective(self):
        c = deep_enable_pipeline()
        area = mc_retime(c, objective="minarea")
        speed = mc_retime(c, objective="minperiod")
        assert speed.period_after == pytest.approx(area.period_after)
        assert area.ff_after <= speed.ff_after

    def test_target_period(self):
        c = deep_enable_pipeline()
        relaxed = mc_retime(c, target_period=4.0)
        assert relaxed.period_after <= 4.0 + 1e-9

    def test_infeasible_target_raises(self):
        from repro.retime import InfeasibleError

        with pytest.raises(InfeasibleError):
            mc_retime(deep_enable_pipeline(), target_period=0.5)

    def test_mixed_classes_restrict(self):
        """With two different enables, registers cannot merge across the
        class boundary: the engine must respect the bounds."""
        c = Circuit("mixed")
        for net in ("clk", "e1", "e2", "a", "b"):
            c.add_input(net)
        c.add_register(d="a", q="qa", clk="clk", en="e1", name="ra")
        c.add_register(d="b", q="qb", clk="clk", en="e2", name="rb")
        c.add_gate(GateFn.AND, ["qa", "qb"], "n1", name="g1")
        c.add_gate(GateFn.NOT, ["n1"], "n2", name="g2")
        c.add_register(d="n2", q="qo", clk="clk", en="e1", name="ro")
        c.add_output("qo")
        result = mc_retime(c)
        check_circuit(result.circuit)
        assert result.n_classes == 2
        # the mixed input layer cannot cross g1: r(g1) >= 0 moves only
        assert result.r["g1"] >= 0

    def test_timings_recorded(self):
        result = mc_retime(deep_enable_pipeline())
        assert set(result.timings) >= {
            "build",
            "bounds",
            "sharing",
            "minperiod",
            "minarea",
            "relocate",
        }
        fractions = result.timing_fractions()
        assert abs(sum(fractions.values()) - 1.0) < 0.2  # phases cover most

    def test_no_register_circuit(self):
        c = Circuit("comb")
        c.add_input("a")
        c.add_gate(GateFn.NOT, ["a"], "y", name="g")
        c.add_output("y")
        result = mc_retime(c)
        assert result.ff_after == 0
        assert result.steps_moved == 0

    def test_conflict_fallback_produces_valid_result(self):
        """A design whose min-area solution requires an unjustifiable
        backward move must converge via bound clamping."""
        c = Circuit("clash")
        for net in ("clk", "rs", "a", "b"):
            c.add_input(net)
        c.add_gate(GateFn.AND, ["a", "b"], "n", name="g")
        # two conflicting registers at the same position: any backward
        # move across g is unjustifiable
        c.add_register(d="n", q="q1", clk="clk", sr="rs", sval=T1, name="r1")
        c.add_register(d="n", q="q2", clk="clk", sr="rs", sval=T0, name="r2")
        c.add_gate(GateFn.NOT, ["q1"], "y1", name="s1")
        c.add_gate(GateFn.NOT, ["q2"], "y2", name="s2")
        c.add_output("y1")
        c.add_output("y2")
        result = mc_retime(c)
        check_circuit(result.circuit)
        # either it never tried the bad move, or it recovered from it
        assert result.r.get("g", 0) == 0
