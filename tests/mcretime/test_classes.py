"""Tests for register classification (paper Def. 1)."""

from repro.logic.ternary import T0, T1
from repro.mcretime import Classifier
from repro.netlist import CONST0, CONST1, Circuit, GateFn


def base(c: Circuit) -> None:
    c.add_input("clk")
    c.add_input("d")
    c.add_input("e")
    c.add_input("rs")


class TestSyntactic:
    def test_same_controls_same_class(self):
        c = Circuit()
        base(c)
        r1 = c.add_register(d="d", clk="clk", en="e")
        r2 = c.add_register(d="d" if False else "e", clk="clk", en="e")
        cl = Classifier(c, semantic=False)
        assert cl.compatible(r1, r2)
        assert cl.n_classes == 1

    def test_different_enable_different_class(self):
        c = Circuit()
        base(c)
        c.add_input("e2")
        r1 = c.add_register(d="d", clk="clk", en="e")
        r2 = c.add_register(d="e", clk="clk", en="e2")
        cl = Classifier(c, semantic=False)
        assert not cl.compatible(r1, r2)

    def test_const1_enable_equals_missing(self):
        c = Circuit()
        base(c)
        r1 = c.add_register(d="d", clk="clk")
        r2 = c.add_register(d="e", clk="clk", en=CONST1)
        cl = Classifier(c, semantic=False)
        assert cl.compatible(r1, r2)

    def test_const0_reset_equals_missing(self):
        c = Circuit()
        base(c)
        r1 = c.add_register(d="d", clk="clk")
        r2 = c.add_register(d="e", clk="clk", sr=CONST0, ar=CONST0)
        cl = Classifier(c, semantic=False)
        assert cl.compatible(r1, r2)

    def test_reset_values_not_part_of_class(self):
        c = Circuit()
        base(c)
        r1 = c.add_register(d="d", clk="clk", sr="rs", sval=T0)
        r2 = c.add_register(d="e", clk="clk", sr="rs", sval=T1)
        cl = Classifier(c, semantic=False)
        assert cl.compatible(r1, r2)

    def test_clock_matters(self):
        c = Circuit()
        base(c)
        c.add_input("clk2")
        r1 = c.add_register(d="d", clk="clk")
        r2 = c.add_register(d="e", clk="clk2")
        cl = Classifier(c, semantic=False)
        assert not cl.compatible(r1, r2)


class TestSemantic:
    def test_buffered_enable_same_class(self):
        c = Circuit()
        base(c)
        c.add_gate(GateFn.BUF, ["e"], "e_buf")
        r1 = c.add_register(d="d", clk="clk", en="e")
        r2 = c.add_register(d="e", clk="clk", en="e_buf")
        assert Classifier(c, semantic=True).compatible(r1, r2)
        assert not Classifier(c, semantic=False).compatible(r1, r2)

    def test_double_inverted_reset_same_class(self):
        c = Circuit()
        base(c)
        c.add_gate(GateFn.NOT, ["rs"], "n1")
        c.add_gate(GateFn.NOT, ["n1"], "rs2")
        r1 = c.add_register(d="d", clk="clk", ar="rs", aval=T0)
        r2 = c.add_register(d="e", clk="clk", ar="rs2", aval=T0)
        assert Classifier(c).compatible(r1, r2)

    def test_inverted_reset_different_class(self):
        c = Circuit()
        base(c)
        c.add_gate(GateFn.NOT, ["rs"], "rsn")
        r1 = c.add_register(d="d", clk="clk", ar="rs")
        r2 = c.add_register(d="e", clk="clk", ar="rsn")
        assert not Classifier(c).compatible(r1, r2)

    def test_tautological_enable_is_no_enable(self):
        c = Circuit()
        base(c)
        c.add_gate(GateFn.OR, ["e", "en_inv"], "always1")
        c.add_gate(GateFn.NOT, ["e"], "en_inv")
        r1 = c.add_register(d="d", clk="clk", en="always1")
        r2 = c.add_register(d="e", clk="clk")
        assert Classifier(c).compatible(r1, r2)

    def test_equivalent_logic_cones(self):
        c = Circuit()
        base(c)
        c.add_input("f")
        # two structurally different but equivalent AND cones
        c.add_gate(GateFn.AND, ["e", "f"], "en_a")
        c.add_gate(GateFn.NOR, ["ne", "nf"], "en_b")
        c.add_gate(GateFn.NOT, ["e"], "ne")
        c.add_gate(GateFn.NOT, ["f"], "nf")
        r1 = c.add_register(d="d", clk="clk", en="en_a")
        r2 = c.add_register(d="e", clk="clk", en="en_b")
        assert Classifier(c).compatible(r1, r2)

    def test_registers_added_after_construction(self):
        c = Circuit()
        base(c)
        r1 = c.add_register(d="d", clk="clk", en="e")
        cl = Classifier(c)
        r2 = c.add_register(d="e", clk="clk", en="e")
        assert cl.compatible(r1, r2)
        assert cl.n_classes == 1

    def test_class_describe(self):
        c = Circuit()
        base(c)
        r1 = c.add_register(d="d", clk="clk", en="e", sr="rs")
        cl = Classifier(c)
        desc = cl.class_of(cl.classify(r1)).describe()
        assert "clk=clk" in desc and "en=e" in desc and "sr=rs" in desc
