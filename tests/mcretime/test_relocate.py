"""Tests for register relocation with reset-state computation (Sec. 5.2).

Includes the paper's Fig. 1 forward move and the Fig. 5 local-conflict /
global-justification scenario, plus sequential-equivalence checks.
"""

import itertools

import pytest

from repro.logic.simulate import SequentialSimulator
from repro.logic.ternary import T0, T1, TX
from repro.mcretime import relocate
from repro.mcretime.relocate import RelocationError
from repro.netlist import Circuit, GateFn, check_circuit


def equivalent_after_reset(
    original: Circuit,
    retimed: Circuit,
    reset_pin: str,
    stimulus: list[dict[str, int]],
) -> bool:
    """Assert cycle-accurate output equality after a sync-reset cycle."""
    sims = []
    for circuit in (original, retimed):
        sim = SequentialSimulator(circuit, x_chooser=lambda name: T0)
        sim.step({**stimulus[0], reset_pin: T1})  # apply reset
        sims.append(sim)
    for vector in stimulus:
        vec = {**vector, reset_pin: T0}
        outs = [sim.step(vec) for sim in sims]
        # compare positionally: retiming renames output nets
        seq0 = [outs[0][n] for n in original.outputs]
        seq1 = [outs[1][n] for n in retimed.outputs]
        if seq0 != seq1:
            return False
    return True


def all_vectors(names: list[str], cycles: int):
    """Deterministic exhaustive-ish stimulus."""
    space = list(itertools.product((T0, T1), repeat=len(names)))
    seq = []
    for i in range(cycles):
        combo = space[i % len(space)]
        seq.append(dict(zip(names, combo)))
    return seq


def fig1_circuit() -> Circuit:
    """Fig. 1a: two EN registers feeding an AND gate."""
    c = Circuit("fig1")
    for net in ("clk", "en", "x1", "x2"):
        c.add_input(net)
    c.add_register(d="x1", q="q1", clk="clk", en="en", name="r1")
    c.add_register(d="x2", q="q2", clk="clk", en="en", name="r2")
    c.add_gate(GateFn.AND, ["q1", "q2"], "y", name="g")
    c.add_output("y")
    return c


class TestForwardMove:
    def test_fig1_forward(self):
        """Both EN registers collapse into one register after the gate —
        the paper's circuit b), 1 register instead of 2."""
        c = fig1_circuit()
        res = relocate(c, {"g": -1})
        check_circuit(res.circuit)
        assert len(res.circuit.registers) == 1
        reg = next(iter(res.circuit.registers.values()))
        assert reg.en == "en"  # the enable moved with the register
        assert res.stats.forward_steps == 1
        assert res.steps_moved == 1

    def test_fig1_forward_equivalence(self):
        c = fig1_circuit()
        res = relocate(c, {"g": -1})
        sims = [
            SequentialSimulator(x, state={n: T0 for n in x.registers})
            for x in (c, res.circuit)
        ]
        for vec in all_vectors(["en", "x1", "x2"], 16):
            outs = [s.step(vec) for s in sims]
            assert outs[0] == outs[1]

    def test_forward_implication_values(self):
        """Forward-moved register values are the gate function of the
        source values (paper Sec. 5.2 / Even et al.)."""
        c = Circuit("fwd")
        for net in ("clk", "rs", "a", "b"):
            c.add_input(net)
        c.add_register(d="a", q="qa", clk="clk", sr="rs", sval=T1, name="ra")
        c.add_register(d="b", q="qb", clk="clk", sr="rs", sval=T0, name="rb")
        c.add_gate(GateFn.NAND, ["qa", "qb"], "y", name="g")
        c.add_output("y")
        res = relocate(c, {"g": -1})
        reg = next(iter(res.circuit.registers.values()))
        assert reg.sval == T1  # NAND(1, 0) = 1

    def test_forward_keeps_shared_source_register(self):
        """A source register with another reader must survive the move."""
        c = Circuit("shared")
        for net in ("clk", "a"):
            c.add_input(net)
        c.add_register(d="a", q="q", clk="clk", name="r")
        c.add_gate(GateFn.NOT, ["q"], "y1", name="g1")
        c.add_gate(GateFn.BUF, ["q"], "y2", name="g2")
        c.add_output("y1")
        c.add_output("y2")
        res = relocate(c, {"g1": -1})
        check_circuit(res.circuit)
        # r still present (feeds g2) + the new register after g1
        assert len(res.circuit.registers) == 2

    def test_forward_two_layers(self):
        c = Circuit("two")
        for net in ("clk", "a"):
            c.add_input(net)
        c.add_register(d="a", q="q1", clk="clk", name="r1")
        c.add_register(d="q1", q="q2", clk="clk", name="r2")
        c.add_gate(GateFn.NOT, ["q2"], "y", name="g")
        c.add_output("y")
        res = relocate(c, {"g": -2})
        check_circuit(res.circuit)
        assert res.steps_moved == 2
        # output is now gate -> reg -> reg
        out = res.circuit.outputs[0]
        reg1 = res.circuit.driver_register(out)
        assert reg1 is not None
        reg2 = res.circuit.driver_register(reg1.d)
        assert reg2 is not None

    def test_self_loop_forward_keeps_loop_sequential(self):
        """Forward across a toggle loop: the new register lands inside
        the loop (no combinational cycle) and the old one delays the
        tap, matching the graph semantics w_r(tap) = 2."""
        c = Circuit("toggle")
        c.add_input("clk")
        c.add_gate(GateFn.NOT, ["q"], "d", name="inv")
        c.add_register(d="d", q="q", clk="clk", name="r")
        c.add_output("q")
        res = relocate(c, {"inv": -1})
        check_circuit(res.circuit)  # includes combinational-cycle check
        assert len(res.circuit.registers) == 2
        # the tap output sees two registers after the inverter
        out = res.circuit.outputs[0]
        reg1 = res.circuit.driver_register(out)
        reg2 = res.circuit.driver_register(reg1.d)
        assert reg2 is not None
        assert res.circuit.driver_gate(reg2.d).name == "inv"


class TestBackwardMove:
    def test_simple_backward(self):
        c = Circuit("bwd")
        for net in ("clk", "a", "b"):
            c.add_input(net)
        c.add_gate(GateFn.AND, ["a", "b"], "n", name="g")
        c.add_register(d="n", q="q", clk="clk", name="r")
        c.add_output("q")
        res = relocate(c, {"g": 1})
        check_circuit(res.circuit)
        assert len(res.circuit.registers) == 2  # one per gate input
        assert res.stats.local_steps == 1
        # output now reads the gate directly
        assert res.circuit.driver_gate(res.circuit.outputs[0]).name == "g"

    def test_backward_justifies_values(self):
        c = Circuit("bwd")
        for net in ("clk", "rs", "a", "b"):
            c.add_input(net)
        c.add_gate(GateFn.AND, ["a", "b"], "n", name="g")
        c.add_register(d="n", q="q", clk="clk", sr="rs", sval=T1, name="r")
        c.add_output("q")
        res = relocate(c, {"g": 1})
        svals = sorted(r.sval for r in res.circuit.registers.values())
        assert svals == [T1, T1]  # AND=1 forces both inputs to 1

    def test_backward_uses_dontcares(self):
        c = Circuit("bwd")
        for net in ("clk", "rs", "a", "b"):
            c.add_input(net)
        c.add_gate(GateFn.AND, ["a", "b"], "n", name="g")
        c.add_register(d="n", q="q", clk="clk", sr="rs", sval=T0, name="r")
        c.add_output("q")
        res = relocate(c, {"g": 1})
        svals = sorted(r.sval for r in res.circuit.registers.values())
        assert svals == [T0, TX]  # one 0 suffices, the other is free

    def test_backward_merges_duplicate_registers(self):
        """Two registers with the same D and class collapse into one
        layer and re-expand per gate input."""
        c = Circuit("dup")
        for net in ("clk", "a", "b"):
            c.add_input(net)
        c.add_gate(GateFn.OR, ["a", "b"], "n", name="g")
        c.add_register(d="n", q="q1", clk="clk", name="r1")
        c.add_register(d="n", q="q2", clk="clk", name="r2")
        c.add_gate(GateFn.NOT, ["q1"], "y1", name="s1")
        c.add_gate(GateFn.NOT, ["q2"], "y2", name="s2")
        c.add_output("y1")
        c.add_output("y2")
        res = relocate(c, {"g": 1})
        check_circuit(res.circuit)
        assert len(res.circuit.registers) == 2  # one per OR input

    def test_backward_blocked_by_unregistered_fanout(self):
        c = Circuit("blocked")
        for net in ("clk", "a", "b"):
            c.add_input(net)
        c.add_gate(GateFn.AND, ["a", "b"], "n", name="g")
        c.add_register(d="n", q="q", clk="clk", name="r")
        c.add_gate(GateFn.NOT, ["n"], "y2", name="tap")  # register-free tap
        c.add_output("q")
        c.add_output("y2")
        with pytest.raises(RelocationError):
            relocate(c, {"g": 1})

    def test_backward_equivalence_with_sync_reset(self):
        c = Circuit("eq")
        for net in ("clk", "rs", "a", "b"):
            c.add_input(net)
        c.add_gate(GateFn.XOR, ["a", "b"], "n", name="g")
        c.add_register(d="n", q="q", clk="clk", sr="rs", sval=T1, name="r")
        c.add_output("q")
        res = relocate(c, {"g": 1})
        assert equivalent_after_reset(
            c, res.circuit, "rs", all_vectors(["a", "b"], 12)
        )


def fig5_circuit() -> Circuit:
    """Paper Fig. 5: AND (v2) feeding NAND (v3) and INV (v4), registers
    after v3 and v4 with reset values that conflict locally at v2."""
    c = Circuit("fig5")
    for net in ("clk", "rs", "x1", "x2", "x3"):
        c.add_input(net)
    c.add_gate(GateFn.AND, ["x1", "x2"], "n2", name="v2")
    c.add_gate(GateFn.NAND, ["n2", "x3"], "n3", name="v3")
    c.add_gate(GateFn.NOT, ["n2"], "n4", name="v4")
    c.add_register(d="n3", q="q3", clk="clk", sr="rs", sval=T1, name="r3")
    c.add_register(d="n4", q="q4", clk="clk", sr="rs", sval=T0, name="r4")
    c.add_output("q3")
    c.add_output("q4")
    return c


class TestGlobalJustification:
    def test_fig5_conflict_resolved_globally(self):
        c = fig5_circuit()
        res = relocate(c, {"v2": 1, "v3": 1, "v4": 1})
        check_circuit(res.circuit)
        # v3 and v4 moves are local; the v2 move conflicts (local picks
        # n2=0 for NAND=1 but INV=0 needs n2=1) and goes global
        assert res.stats.global_steps == 1
        assert res.stats.local_steps == 2
        # global solution: x1=x2=1 (n2=1), x3 register revised to 0
        regs = {r.d: r for r in res.circuit.registers.values()}
        assert regs["x1"].sval == T1
        assert regs["x2"].sval == T1
        assert regs["x3"].sval == T0

    def test_fig5_equivalence(self):
        c = fig5_circuit()
        res = relocate(c, {"v2": 1, "v3": 1, "v4": 1})
        assert equivalent_after_reset(
            c, res.circuit, "rs", all_vectors(["x1", "x2", "x3"], 20)
        )

    def test_unresolvable_conflict_raises(self):
        """Two original registers at the same position with clashing
        values can never be justified."""
        from repro.mcretime import JustificationConflict

        c = Circuit("clash")
        for net in ("clk", "rs", "a", "b"):
            c.add_input(net)
        c.add_gate(GateFn.AND, ["a", "b"], "n", name="g")
        c.add_register(d="n", q="q1", clk="clk", sr="rs", sval=T1, name="r1")
        c.add_register(d="n", q="q2", clk="clk", sr="rs", sval=T0, name="r2")
        c.add_output("q1")
        c.add_output("q2")
        with pytest.raises(JustificationConflict) as exc:
            relocate(c, {"g": 1})
        assert exc.value.gate == "g"
        assert exc.value.moves_done == 0


class TestScheduling:
    def test_chained_moves_order_independent(self):
        """g2's backward move only becomes valid after g1's (the register
        must arrive first); the sweep scheduler sorts it out."""
        c = Circuit("chain")
        for net in ("clk", "a"):
            c.add_input(net)
        c.add_gate(GateFn.NOT, ["a"], "n1", name="g1")
        c.add_gate(GateFn.NOT, ["n1"], "n2", name="g2")
        c.add_register(d="n2", q="q", clk="clk", name="r")
        c.add_output("q")
        res = relocate(c, {"g1": 1, "g2": 1})
        check_circuit(res.circuit)
        # register ends up before g1
        reg = next(iter(res.circuit.registers.values()))
        assert reg.d == "a"

    def test_zero_moves_is_identity(self):
        c = fig1_circuit()
        res = relocate(c, {})
        assert res.steps_moved == 0
        assert res.circuit.counts() == c.counts()


class TestInheritedRequirementAtOutputNet:
    def test_local_justification_honours_terminal_net_requirement(self):
        """Regression: a derived X-valued register can sit at a net that
        carries a *terminal* requirement (satisfied by deeper logic so
        far).  A backward move there must justify the terminal value,
        not just the removed register's X (found on C6 at scale 0.25 by
        the engine's post-relocation verification)."""
        from repro.mcretime import Classifier
        from repro.mcretime.relocate import _try_backward
        from repro.mcretime.reset import JustificationStats

        c = Circuit("inherit")
        for net in ("clk", "rs", "a", "b"):
            c.add_input(net)
        c.add_gate(GateFn.XOR, ["a", "b"], "n1", name="g")
        c.add_register(d="n1", q="q", clk="clk", ar="rs", aval=TX, name="R")
        c.add_output("q")
        # pretend R descends from an original register at n1 with aval=0
        requirements = {"R": frozenset({("n1", TX, T0)})}
        stats = JustificationStats()
        ok = _try_backward(
            c, c.gates["g"], Classifier(c), requirements, stats, {}
        )
        assert ok
        avals = sorted(
            reg.aval for reg in c.registers.values()
        )
        # XOR must produce 0: inputs justified to (0,0) or (1,1) — never X
        assert avals in ([T0, T0], [T1, T1])
        # and the implication indeed reproduces the requirement
        from repro.logic.simulate import eval_nets

        values = eval_nets(c, {r.q: r.aval for r in c.registers.values()})
        assert values["n1"] == T0


class TestGlobalJustificationSoundness:
    """Regressions for the function-preserving global justification.

    Earlier revisions snapshotted sibling *values* when revising a
    committed register's channel value during global justification.
    That is unsound in two ways the differential fuzzer exposed:

    * revising a sibling changes the *function* feeding every register
      D pin and output in its fanout, so the moved region replays
      different data after reset-load events (fuzz seed 6);
    * a backward move's output net can itself be an original register
      position carried in another register's outstanding requirement
      set, which both the local and global paths must keep satisfied
      (fuzz seed 36).

    These seeds drive the full pipeline and demand sequential
    refinement; with the value-snapshot logic either seed produced a
    circuit that differed from the original on a binary output.
    """

    @pytest.mark.parametrize("seed", [6, 36])
    def test_fuzz_regression_seed_refines(self, seed):
        from repro.verify.fuzz import fuzz_one

        case = fuzz_one(seed, cycles=48)
        assert case.error is None, case.error
        assert case.ok, case.check.reason

    def test_figure5_reset_values_survive_the_soundness_fix(self):
        # the paper's Fig. 5 example exercises the vacuous-channel path:
        # its class has a sync reset only, so the aval channel imposes
        # no frontier equality constraints (otherwise the removed
        # registers' free aval variables would make the forall
        # unsatisfiable and the paper example would spuriously conflict)
        from repro.experiments.figures import figure5

        fig = figure5()
        assert fig.equivalent
        assert fig.global_steps == 1
