"""Tests for register merging and the engine's reset verification."""

import pytest

from repro.logic.ternary import T0, T1, TX
from repro.mcretime import Classifier, merge_shareable_registers
from repro.mcretime.engine import _verify_reset_requirements
from repro.mcretime.relocate import RelocationError
from repro.netlist import Circuit, GateFn, check_circuit


def dup_circuit(sval_a=TX, sval_b=TX, same_class=True) -> Circuit:
    c = Circuit("dup")
    for net in ("clk", "rs", "e1", "e2", "a"):
        c.add_input(net)
    c.add_register(
        d="a", q="q1", clk="clk", en="e1", sr="rs", sval=sval_a, name="r1"
    )
    c.add_register(
        d="a",
        q="q2",
        clk="clk",
        en="e1" if same_class else "e2",
        sr="rs",
        sval=sval_b,
        name="r2",
    )
    c.add_gate(GateFn.AND, ["q1", "q2"], "y", name="g")
    c.add_output("y")
    return c


class TestMergeShareable:
    def test_merges_identical(self):
        c = dup_circuit()
        removed = merge_shareable_registers(c, Classifier(c))
        assert removed == 1
        check_circuit(c)
        assert len(c.registers) == 1
        # the AND gate now reads the surviving register twice
        gate = c.gates["g"]
        assert gate.inputs[0] == gate.inputs[1]

    def test_meets_compatible_values(self):
        c = dup_circuit(sval_a=T1, sval_b=TX)
        merge_shareable_registers(c, Classifier(c))
        survivor = next(iter(c.registers.values()))
        assert survivor.sval == T1  # X yields to the binary sibling

    def test_keeps_conflicting_values(self):
        c = dup_circuit(sval_a=T0, sval_b=T1)
        removed = merge_shareable_registers(c, Classifier(c))
        assert removed == 0
        assert len(c.registers) == 2

    def test_keeps_different_classes(self):
        c = dup_circuit(same_class=False)
        removed = merge_shareable_registers(c, Classifier(c))
        assert removed == 0

    def test_merges_requirements(self):
        c = dup_circuit()
        reqs = {
            "r1": frozenset({("a", T1, TX)}),
            "r2": frozenset({("y", T0, TX)}),
        }
        merge_shareable_registers(c, Classifier(c), reqs)
        survivor = next(iter(c.registers))
        assert reqs[survivor] == frozenset({("a", T1, TX), ("y", T0, TX)})


class TestVerifyResetRequirements:
    def build(self):
        c = Circuit("v")
        for net in ("clk", "rs", "a", "b"):
            c.add_input(net)
        c.add_gate(GateFn.AND, ["qa", "qb"], "n", name="g")
        c.add_register(d="a", q="qa", clk="clk", sr="rs", sval=T1, name="ra")
        c.add_register(d="b", q="qb", clk="clk", sr="rs", sval=T1, name="rb")
        c.add_output("n")
        return c

    def test_satisfied_requirements_pass(self):
        c = self.build()
        reqs = {"ra": frozenset({("n", T1, TX)})}
        _verify_reset_requirements(c, reqs)  # AND(1,1) = 1: fine

    def test_violated_requirement_raises(self):
        c = self.build()
        c.registers["rb"].sval = T0  # breaks the implication
        reqs = {"ra": frozenset({("n", T1, TX)})}
        with pytest.raises(RelocationError):
            _verify_reset_requirements(c, reqs)

    def test_x_requirements_ignored(self):
        c = self.build()
        c.registers["rb"].sval = TX
        reqs = {"ra": frozenset({("n", TX, TX)})}
        _verify_reset_requirements(c, reqs)

    def test_empty_requirements_pass(self):
        _verify_reset_requirements(self.build(), {})
