"""Tests for the report/table helpers."""

from repro.mcretime import format_table, mc_retime, report_from_result
from repro.netlist import Circuit, GateFn


def tiny_result():
    c = Circuit("tiny")
    for net in ("clk", "a"):
        c.add_input(net)
    c.add_register(d="a", q="q", clk="clk")
    n = c.add_gate(GateFn.NOT, ["q"]).output
    c.add_register(d=n, q="q2", clk="clk")
    c.add_output("q2")
    return mc_retime(c)


class TestReport:
    def test_report_fields(self):
        report = report_from_result("tiny", tiny_result())
        assert report.name == "tiny"
        assert report.n_classes == 1
        assert "/" in report.step_column()
        assert 0.0 <= report.local_fraction <= 1.0
        total = (
            report.basic_fraction
            + report.relocation_fraction
            + report.overhead_fraction
        )
        assert total <= 1.0 + 1e-9

    def test_format_table_alignment(self):
        rows = [
            {"Name": "C1", "#FF": 35, "Delay": 32.4},
            {"Name": "C10", "#FF": 206, "Delay": 48.05},
        ]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("Name")
        assert all(len(line) == len(lines[0]) for line in lines[1:])
        assert "32.4" in text and "48.0" in text  # .1f default (48.05 -> 48.0)

    def test_format_table_empty(self):
        assert format_table([]) == "(empty table)"

    def test_format_table_floatfmt(self):
        text = format_table([{"x": 1.23456}], floatfmt=".3f")
        assert "1.235" in text
