"""Tests for the three-valued domain."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.logic.ternary import (
    T0,
    T1,
    TX,
    TERNARY_VALUES,
    compatible,
    meet,
    ternary_and,
    ternary_and_all,
    ternary_char,
    ternary_from_char,
    ternary_mux,
    ternary_not,
    ternary_or,
    ternary_or_all,
    ternary_xor,
    vector_str,
)

tern = st.sampled_from(TERNARY_VALUES)


class TestOperators:
    def test_not(self):
        assert ternary_not(T0) == T1
        assert ternary_not(T1) == T0
        assert ternary_not(TX) == TX

    def test_and_dominance(self):
        assert ternary_and(T0, TX) == T0
        assert ternary_and(TX, T0) == T0
        assert ternary_and(T1, TX) == TX
        assert ternary_and(T1, T1) == T1

    def test_or_dominance(self):
        assert ternary_or(T1, TX) == T1
        assert ternary_or(TX, T1) == T1
        assert ternary_or(T0, TX) == TX
        assert ternary_or(T0, T0) == T0

    def test_xor_taint(self):
        assert ternary_xor(TX, T0) == TX
        assert ternary_xor(T1, T0) == T1
        assert ternary_xor(T1, T1) == T0

    def test_mux(self):
        assert ternary_mux(T0, T1, T0) == T1
        assert ternary_mux(T1, T1, T0) == T0
        assert ternary_mux(TX, T1, T1) == T1
        assert ternary_mux(TX, T1, T0) == TX
        assert ternary_mux(TX, TX, TX) == TX

    def test_reductions(self):
        assert ternary_and_all([]) == T1
        assert ternary_or_all([]) == T0
        assert ternary_and_all([T1, TX, T0]) == T0
        assert ternary_or_all([T0, TX, T1]) == T1

    @given(a=tern, b=tern)
    def test_de_morgan(self, a, b):
        assert ternary_not(ternary_and(a, b)) == ternary_or(
            ternary_not(a), ternary_not(b)
        )

    @given(a=tern, b=tern)
    def test_commutative(self, a, b):
        assert ternary_and(a, b) == ternary_and(b, a)
        assert ternary_or(a, b) == ternary_or(b, a)
        assert ternary_xor(a, b) == ternary_xor(b, a)

    @given(a=tern)
    def test_identities(self, a):
        assert ternary_and(a, T1) == a
        assert ternary_or(a, T0) == a


class TestLattice:
    def test_compatible(self):
        assert compatible(TX, T0) and compatible(T1, TX)
        assert compatible(T0, T0)
        assert not compatible(T0, T1)

    def test_meet(self):
        assert meet(TX, T0) == T0
        assert meet(T1, TX) == T1
        assert meet(TX, TX) == TX
        with pytest.raises(ValueError):
            meet(T0, T1)

    @given(a=tern, b=tern)
    def test_meet_defined_iff_compatible(self, a, b):
        if compatible(a, b):
            m = meet(a, b)
            assert compatible(m, a) and compatible(m, b)
        else:
            with pytest.raises(ValueError):
                meet(a, b)


class TestText:
    def test_chars(self):
        assert [ternary_char(v) for v in TERNARY_VALUES] == ["0", "1", "-"]

    def test_parse(self):
        for ch, v in (("0", T0), ("1", T1), ("-", TX), ("x", TX), ("X", TX)):
            assert ternary_from_char(ch) == v
        with pytest.raises(ValueError):
            ternary_from_char("z")

    def test_vector(self):
        assert vector_str([T0, T1, TX, T1]) == "01-1"
