"""Tests for net-function construction over cuts (BDD bridge)."""

from repro.bdd import BDD, FALSE, TRUE
from repro.logic.netfn import default_cut, net_functions, nets_equivalent
from repro.netlist import CONST0, CONST1, Circuit, GateFn


def circuit_with_register() -> Circuit:
    c = Circuit()
    for net in ("clk", "a", "b"):
        c.add_input(net)
    c.add_gate(GateFn.AND, ["a", "b"], "n1", name="g1")
    c.add_register(d="n1", q="q", clk="clk", name="r")
    c.add_gate(GateFn.OR, ["q", "a"], "y", name="g2")
    c.add_output("y")
    return c


class TestDefaultCut:
    def test_inputs_and_register_outputs(self):
        c = circuit_with_register()
        assert default_cut(c) == {"clk", "a", "b", "q"}


class TestNetFunctions:
    def test_gate_function(self):
        c = circuit_with_register()
        bdd = BDD()
        fns = net_functions(c, ["n1"], bdd)
        expected = bdd.and_(bdd.var("a"), bdd.var("b"))
        assert fns["n1"] == expected

    def test_cut_stops_at_register(self):
        c = circuit_with_register()
        bdd = BDD()
        fns = net_functions(c, ["y"], bdd)
        expected = bdd.or_(bdd.var("q"), bdd.var("a"))
        assert fns["y"] == expected

    def test_cut_at_internal_net(self):
        c = circuit_with_register()
        bdd = BDD()
        # cutting at an internal gate output makes it a free variable
        fns = net_functions(c, ["n1"], bdd, cut={"n1"})
        assert fns["n1"] == bdd.var("n1")

    def test_constants(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate(GateFn.AND, ["a", CONST1], "y1", name="g1")
        c.add_gate(GateFn.AND, ["a", CONST0], "y0", name="g2")
        c.add_output("y1")
        c.add_output("y0")
        bdd = BDD()
        fns = net_functions(c, ["y1", "y0"], bdd)
        assert fns["y1"] == bdd.var("a")
        assert fns["y0"] == FALSE

    def test_bindings_override(self):
        c = circuit_with_register()
        bdd = BDD()
        fns = net_functions(c, ["y"], bdd, bindings={"q": TRUE})
        assert fns["y"] == TRUE

    def test_deep_chain_no_recursion_error(self):
        c = Circuit()
        c.add_input("a")
        net = "a"
        for _ in range(3000):
            net = c.add_gate(GateFn.NOT, [net]).output
        c.add_output(net)
        bdd = BDD()
        fns = net_functions(c, [net], bdd)
        assert fns[net] in (bdd.var("a"), bdd.not_(bdd.var("a")))


class TestNetsEquivalent:
    def test_same_net(self):
        c = circuit_with_register()
        assert nets_equivalent(c, "a", "a")

    def test_equivalent_structures(self):
        c = Circuit()
        c.add_input("a")
        c.add_input("b")
        c.add_gate(GateFn.AND, ["a", "b"], "x", name="g1")
        c.add_gate(GateFn.NOR, ["na", "nb"], "y", name="g2")
        c.add_gate(GateFn.NOT, ["a"], "na", name="i1")
        c.add_gate(GateFn.NOT, ["b"], "nb", name="i2")
        c.add_output("x")
        c.add_output("y")
        assert nets_equivalent(c, "x", "y")

    def test_inequivalent(self):
        c = circuit_with_register()
        assert not nets_equivalent(c, "n1", "y")
