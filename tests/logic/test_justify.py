"""Tests for local and cone (global) justification."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.functions import eval_table
from repro.logic.justify import (
    implication_satisfies,
    justification_choices,
    justify_cone,
    justify_gate,
)
from repro.logic.ternary import T0, T1, TX
from repro.netlist import Circuit, Gate, GateFn, make_lut


class TestJustifyGate:
    def test_and_output_one_forces_all_ones(self):
        g = Gate("g", GateFn.AND, ["a", "b"], "y")
        assert justify_gate(g, T1) == [T1, T1]

    def test_and_output_zero_uses_dontcare(self):
        g = Gate("g", GateFn.AND, ["a", "b"], "y")
        vec = justify_gate(g, T0)
        assert vec.count(TX) == 1 and vec.count(T0) == 1

    def test_or_output_one_uses_dontcare(self):
        g = Gate("g", GateFn.OR, ["a", "b"], "y")
        vec = justify_gate(g, T1)
        assert vec.count(TX) == 1 and vec.count(T1) == 1

    def test_xor_has_no_dontcares(self):
        g = Gate("g", GateFn.XOR, ["a", "b"], "y")
        for req in (T0, T1):
            vec = justify_gate(g, req)
            assert TX not in vec
            assert eval_table(g.truth_table(), vec) == req

    def test_constant_gate_unjustifiable(self):
        g = make_lut("g", ["a", "b"], "y", 0)  # constant 0
        assert justify_gate(g, T1) is None
        assert justify_gate(g, T0) == [TX, TX]

    def test_inverter(self):
        g = Gate("g", GateFn.NOT, ["a"], "y")
        assert justify_gate(g, T1) == [T0]
        assert justify_gate(g, T0) == [T1]

    def test_requires_binary_requirement(self):
        g = Gate("g", GateFn.NOT, ["a"], "y")
        with pytest.raises(ValueError):
            justify_gate(g, TX)

    @settings(max_examples=100, deadline=None)
    @given(table=st.integers(min_value=1, max_value=65534))
    def test_justification_always_correct(self, table):
        g = make_lut("g", ["a", "b", "c", "d"], "y", table)
        for req in (T0, T1):
            vec = justify_gate(g, req)
            if vec is not None:
                assert eval_table(table, vec) == req

    def test_wide_gate_bdd_path(self):
        # 6-input AND forces the BDD fallback
        g = Gate("g", GateFn.AND, [f"i{k}" for k in range(6)], "y")
        vec = justify_gate(g, T1)
        assert vec == [T1] * 6
        vec0 = justify_gate(g, T0)
        assert eval_table(g.truth_table(), vec0) == T0

    def test_choices_ordered_by_dontcares(self):
        g = Gate("g", GateFn.OR, ["a", "b"], "y")
        choices = justification_choices(g, T1)
        assert len(choices) >= 3
        dontcares = [v.count(TX) for v in choices]
        assert dontcares == sorted(dontcares, reverse=True)
        for vec in choices:
            assert eval_table(g.truth_table(), vec) == T1


def cone_circuit() -> Circuit:
    """Paper Fig. 5 topology: v2=AND feeding v3=NAND and v4=INV."""
    c = Circuit("fig5")
    c.add_input("x1")
    c.add_input("x2")
    c.add_input("x3")
    c.add_gate(GateFn.AND, ["x1", "x2"], "n2", name="v2")
    c.add_gate(GateFn.NAND, ["n2", "x3"], "n3", name="v3")
    c.add_gate(GateFn.NOT, ["n2"], "n4", name="v4")
    c.add_output("n3")
    c.add_output("n4")
    return c


class TestJustifyCone:
    def test_single_requirement(self):
        c = cone_circuit()
        sol = justify_cone(c, {"n4": T1}, {"x1", "x2", "x3"})
        assert sol is not None
        assert implication_satisfies(c, sol, {"n4": T1})

    def test_joint_requirements(self):
        c = cone_circuit()
        # n3=1 and n4=1 -> n2=0, x3 free
        sol = justify_cone(c, {"n3": T1, "n4": T1}, {"x1", "x2", "x3"})
        assert sol is not None
        assert implication_satisfies(c, sol, {"n3": T1, "n4": T1})

    def test_conflicting_requirements_need_x3(self):
        c = cone_circuit()
        # n3=0 requires n2=1 and x3=1; n4=0 requires n2=1: consistent
        sol = justify_cone(c, {"n3": T0, "n4": T0}, {"x1", "x2", "x3"})
        assert sol == {"x1": T1, "x2": T1, "x3": T1}

    def test_impossible(self):
        c = cone_circuit()
        # n3=0 requires n2=1; n4=1 requires n2=0
        assert justify_cone(c, {"n3": T0, "n4": T1}, {"x1", "x2", "x3"}) is None

    def test_all_x_requirements_trivial(self):
        c = cone_circuit()
        sol = justify_cone(c, {"n3": TX}, {"x1"})
        assert sol == {"x1": TX}

    def test_side_inputs_universally_quantified(self):
        c = cone_circuit()
        # solve only for x1: n4=1 needs n2=0; with x2 outside the cut the
        # only robust choice is x1=0
        sol = justify_cone(c, {"n4": T1}, {"x1"})
        assert sol == {"x1": T0}

    def test_side_inputs_can_make_it_impossible(self):
        c = cone_circuit()
        # n4=0 needs n2=1 which needs x2=1; x2 is uncontrolled -> fail
        assert justify_cone(c, {"n4": T0}, {"x1"}) is None

    def test_prefer_dontcare_false_concretizes(self):
        c = cone_circuit()
        sol = justify_cone(
            c, {"n4": T1}, {"x1", "x2", "x3"}, prefer_dontcare=False
        )
        assert TX not in sol.values()
        assert implication_satisfies(c, sol, {"n4": T1})
