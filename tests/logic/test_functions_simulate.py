"""Tests for ternary gate evaluation and circuit simulation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.functions import eval_gate, eval_table
from repro.logic.simulate import SequentialSimulator, eval_nets
from repro.logic.ternary import T0, T1, TX
from repro.netlist import CONST1, Circuit, Gate, GateFn


class TestEvalTable:
    def test_binary_lookup(self):
        and2 = 0b1000
        assert eval_table(and2, [T1, T1]) == T1
        assert eval_table(and2, [T0, T1]) == T0

    def test_x_propagation_and(self):
        and2 = 0b1000
        assert eval_table(and2, [T0, TX]) == T0  # 0 dominates
        assert eval_table(and2, [T1, TX]) == TX

    def test_exact_not_kleene(self):
        # LUT computing a XOR a-style degenerate table: f = i0 OR ~i0 = 1
        tautology = 0b11
        assert eval_table(tautology, [TX]) == T1

    def test_constant_tables(self):
        assert eval_table(0b0000, [TX, TX]) == T0
        assert eval_table(0b1111, [TX, TX]) == T1

    @settings(max_examples=80, deadline=None)
    @given(table=st.integers(min_value=0, max_value=255))
    def test_x_result_consistent_with_completions(self, table):
        values = [TX, T1, TX]
        result = eval_table(table, values)
        seen = set()
        for a in (T0, T1):
            for c in (T0, T1):
                seen.add(eval_table(table, [a, T1, c]))
        if len(seen) == 1:
            assert result == seen.pop()
        else:
            assert result == TX

    def test_eval_gate_arity_check(self):
        g = Gate("g", GateFn.AND, ["a", "b"], "y")
        import pytest

        with pytest.raises(ValueError):
            eval_gate(g, [T1])


def counter_bit() -> Circuit:
    """1-bit counter with enable and async clear: q' = q XOR 1 when en."""
    c = Circuit("cnt")
    c.add_input("clk")
    c.add_input("en")
    c.add_input("rst")
    c.add_gate(GateFn.NOT, ["q"], "d", name="inv")
    c.add_register(d="d", q="q", clk="clk", en="en", ar="rst", aval=T0, name="r")
    c.add_output("q")
    return c


class TestEvalNets:
    def test_sweep(self):
        c = counter_bit()
        values = eval_nets(c, {"q": T0})
        assert values["d"] == T1

    def test_unknown_inputs_default_x(self):
        c = counter_bit()
        values = eval_nets(c, {})
        assert values["d"] == TX

    def test_const_nets_present(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate(GateFn.AND, ["a", CONST1], "y")
        c.add_output("y")
        assert eval_nets(c, {"a": T1})["y"] == T1


class TestSequentialSimulator:
    def test_counter_counts(self):
        c = counter_bit()
        sim = SequentialSimulator(c, state={"r": T0})
        outs = sim.run([{"en": T1, "rst": T0}] * 4)
        assert [o["q"] for o in outs] == [T0, T1, T0, T1]

    def test_enable_holds(self):
        c = counter_bit()
        sim = SequentialSimulator(c, state={"r": T1})
        outs = sim.run([{"en": T0, "rst": T0}] * 3)
        assert [o["q"] for o in outs] == [T1, T1, T1]

    def test_async_reset_forces_value(self):
        c = counter_bit()
        sim = SequentialSimulator(c, state={"r": T1})
        sim.step({"en": T1, "rst": T1})
        assert sim.state["r"] == T0

    def test_default_reset_state_prefers_sync(self):
        # both reset pins with differing values: the *synchronous* value
        # wins, matching the equivalent-reset-state convention of
        # mcretime.reset (regression for the aval-first bug)
        c = Circuit()
        c.add_input("clk")
        c.add_input("d")
        c.add_input("rs")
        c.add_register(d="d", clk="clk", ar="rs", aval=T1, sr="rs", sval=T0, name="r")
        assert SequentialSimulator.default_reset_state(c) == {"r": T0}

    def test_default_reset_state_async_fallback(self):
        # sval is X: fall back to the async value, else X
        c = Circuit()
        c.add_input("clk")
        c.add_input("d")
        c.add_input("rs")
        c.add_register(
            d="d", clk="clk", ar="rs", aval=T1, sr="rs", sval=TX, name="ra"
        )
        c.add_register(d="d2", clk="clk", name="rx")
        c.add_input("d2")
        assert SequentialSimulator.default_reset_state(c) == {
            "ra": T1,
            "rx": TX,
        }

    def test_sync_reset_applies_on_edge(self):
        c = Circuit()
        c.add_input("clk")
        c.add_input("d")
        c.add_input("s")
        c.add_register(d="d", q="q", clk="clk", sr="s", sval=T1, name="r")
        c.add_output("q")
        sim = SequentialSimulator(c, state={"r": T0})
        sim.step({"d": T0, "s": T1})
        assert sim.state["r"] == T1

    def test_x_chooser(self):
        c = counter_bit()
        sim = SequentialSimulator(c, x_chooser=lambda name: T0)
        # register has aval=T0 so default state is already 0; force X first
        sim2 = SequentialSimulator(
            Circuit("empty"), state={}, x_chooser=lambda name: T0
        )
        assert sim.state["r"] == T0
        assert sim2.state == {}

    def test_enable_x_but_d_equals_hold(self):
        c = Circuit()
        c.add_input("clk")
        c.add_input("d")
        c.add_input("e")
        c.add_register(d="d", q="q", clk="clk", en="e", name="r")
        c.add_output("q")
        sim = SequentialSimulator(c, state={"r": T1})
        sim.step({"d": T1, "e": TX})
        assert sim.state["r"] == T1  # load or hold both give 1
        sim.step({"d": T0, "e": TX})
        assert sim.state["r"] == TX  # genuinely unknown
