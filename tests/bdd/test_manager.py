"""Unit + property tests for the ROBDD engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDD, BDDError, FALSE, TRUE


@pytest.fixture()
def bdd():
    return BDD()


class TestBasics:
    def test_terminals(self, bdd):
        assert bdd.not_(TRUE) == FALSE
        assert bdd.not_(FALSE) == TRUE
        assert bdd.and_(TRUE, FALSE) == FALSE
        assert bdd.or_(TRUE, FALSE) == TRUE

    def test_var_canonical(self, bdd):
        assert bdd.var("a") == bdd.var("a")
        assert bdd.var("a") != bdd.var("b")

    def test_idempotence_and_complement(self, bdd):
        a = bdd.var("a")
        assert bdd.and_(a, a) == a
        assert bdd.or_(a, a) == a
        assert bdd.and_(a, bdd.not_(a)) == FALSE
        assert bdd.or_(a, bdd.not_(a)) == TRUE
        assert bdd.not_(bdd.not_(a)) == a

    def test_commutativity(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        assert bdd.and_(a, b) == bdd.and_(b, a)
        assert bdd.or_(a, b) == bdd.or_(b, a)
        assert bdd.xor(a, b) == bdd.xor(b, a)

    def test_de_morgan(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        assert bdd.not_(bdd.and_(a, b)) == bdd.or_(bdd.not_(a), bdd.not_(b))

    def test_xor_xnor(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        assert bdd.xnor(a, b) == bdd.not_(bdd.xor(a, b))
        assert bdd.xor(a, a) == FALSE
        assert bdd.xnor(a, a) == TRUE

    def test_implies(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        assert bdd.implies(FALSE, a) == TRUE
        assert bdd.implies(a, a) == TRUE
        assert bdd.implies(a, b) == bdd.or_(bdd.not_(a), b)

    def test_node_decompose_terminal_raises(self, bdd):
        with pytest.raises(BDDError):
            bdd.node(TRUE)

    def test_and_or_all(self, bdd):
        vs = [bdd.var(n) for n in "abc"]
        assert bdd.and_all([]) == TRUE
        assert bdd.or_all([]) == FALSE
        assert bdd.and_all(vs) == bdd.and_(vs[0], bdd.and_(vs[1], vs[2]))


class TestTruthTable:
    def test_and2(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        assert bdd.from_truth_table(0b1000, [a, b]) == bdd.and_(a, b)

    def test_mux(self, bdd):
        s, a, b = bdd.var("s"), bdd.var("a"), bdd.var("b")
        # minterm bit order (s, a, b); sel=1 -> b
        table = 0
        for m in range(8):
            sb, ab, bb = m & 1, (m >> 1) & 1, (m >> 2) & 1
            if (bb if sb else ab):
                table |= 1 << m
        assert bdd.from_truth_table(table, [s, a, b]) == bdd.ite(s, b, a)

    def test_zero_inputs(self, bdd):
        assert bdd.from_truth_table(1, []) == TRUE
        assert bdd.from_truth_table(0, []) == FALSE

    @settings(max_examples=100, deadline=None)
    @given(table=st.integers(min_value=0, max_value=65535))
    def test_matches_enumeration(self, table):
        bdd = BDD()
        vs = [bdd.var(f"x{i}") for i in range(4)]
        f = bdd.from_truth_table(table, vs)
        for m in range(16):
            assignment = {i: bool((m >> i) & 1) for i in range(4)}
            value = bdd.restrict(f, assignment)
            expected = TRUE if (table >> m) & 1 else FALSE
            assert value == expected


class TestOperations:
    def test_restrict(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = bdd.and_(a, b)
        assert bdd.restrict(f, {0: True}) == b
        assert bdd.restrict(f, {0: False}) == FALSE

    def test_compose(self, bdd):
        a, b, c = bdd.var("a"), bdd.var("b"), bdd.var("c")
        f = bdd.and_(a, b)
        g = bdd.or_(b, c)
        # substitute g for a
        composed = bdd.compose(f, 0, g)
        assert composed == bdd.and_(bdd.or_(b, c), b)

    def test_compose_below(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = bdd.and_(a, b)
        # substitute for b (level 1) a function of a
        composed = bdd.compose(f, 1, bdd.not_(a))
        assert composed == FALSE

    def test_exists(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = bdd.and_(a, b)
        assert bdd.exists(f, [0]) == b
        assert bdd.exists(f, [0, 1]) == TRUE
        assert bdd.exists(FALSE, [0]) == FALSE

    def test_forall(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = bdd.or_(a, b)
        assert bdd.forall(f, [0]) == b
        assert bdd.forall(bdd.and_(a, b), [0]) == FALSE

    def test_support(self, bdd):
        a, b, c = bdd.var("a"), bdd.var("b"), bdd.var("c")
        f = bdd.and_(a, c)
        assert bdd.support(f) == {0, 2}
        assert bdd.support(TRUE) == set()

    def test_size(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        assert bdd.size(TRUE) == 1
        assert bdd.size(a) == 3
        assert bdd.size(bdd.and_(a, b)) == 4


class TestSat:
    def test_sat_one_none_for_false(self, bdd):
        assert bdd.sat_one(FALSE) is None
        assert bdd.sat_one(TRUE) == {}

    def test_sat_one_satisfies(self, bdd):
        a, b, c = bdd.var("a"), bdd.var("b"), bdd.var("c")
        f = bdd.and_(bdd.xor(a, b), c)
        model = bdd.sat_one(f)
        assert bdd.restrict(f, model) == TRUE

    def test_sat_count(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        assert bdd.sat_count(TRUE) == 4
        assert bdd.sat_count(FALSE) == 0
        assert bdd.sat_count(a) == 2
        assert bdd.sat_count(bdd.and_(a, b)) == 1
        assert bdd.sat_count(bdd.xor(a, b)) == 2

    def test_sat_count_nvars_guard(self, bdd):
        a, b, c = bdd.var("a"), bdd.var("b"), bdd.var("c")
        with pytest.raises(BDDError):
            bdd.sat_count(c, n_vars=1)

    def test_all_sat(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        f = bdd.or_(a, b)
        models = list(bdd.all_sat(f, [0, 1]))
        assert len(models) == 3
        for m in models:
            assert bdd.restrict(f, m) == TRUE

    def test_all_sat_foreign_support(self, bdd):
        a, b = bdd.var("a"), bdd.var("b")
        # enumerate over a only; b remains free -> both a-values extendable
        f = bdd.or_(a, b)
        models = list(bdd.all_sat(f, [0]))
        assert len(models) == 2

    @settings(max_examples=60, deadline=None)
    @given(table=st.integers(min_value=0, max_value=255))
    def test_sat_count_matches_popcount(self, table):
        bdd = BDD()
        vs = [bdd.var(f"x{i}") for i in range(3)]
        f = bdd.from_truth_table(table, vs)
        assert bdd.sat_count(f) == bin(table).count("1")


class TestCanonicity:
    @settings(max_examples=60, deadline=None)
    @given(
        t1=st.integers(min_value=0, max_value=255),
        t2=st.integers(min_value=0, max_value=255),
    )
    def test_equal_tables_equal_nodes(self, t1, t2):
        bdd = BDD()
        vs = [bdd.var(f"x{i}") for i in range(3)]
        f1 = bdd.from_truth_table(t1, vs)
        f2 = bdd.from_truth_table(t2, vs)
        assert (f1 == f2) == (t1 == t2)

    def test_shannon_expansion_rebuilds(self):
        bdd = BDD()
        a, b, c = (bdd.var(n) for n in "abc")
        f = bdd.or_(bdd.and_(a, b), bdd.and_(bdd.not_(a), c))
        f1 = bdd.restrict(f, {0: True})
        f0 = bdd.restrict(f, {0: False})
        assert bdd.ite(a, f1, f0) == f
