"""Unit tests for the netlist-level pipeline / C-slow transforms."""

import pytest

from repro.netlist import Circuit, check_circuit, write_blif
from repro.pipeline import (
    PipelineError,
    cslow_transform,
    insert_pipeline_layers,
)
from repro.synth import build_design


def _counter(name="ctr", en=False, sr=False, ar=False) -> Circuit:
    c = Circuit(name)
    clk = c.add_input("clk")
    kwargs = {}
    if en:
        kwargs["en"] = c.add_input("en")
    if sr:
        kwargs["sr"] = c.add_input("srst")
        kwargs["sval"] = 0
    if ar:
        kwargs["ar"] = c.add_input("rst")
        kwargs["aval"] = 0
    from repro.netlist import GateFn

    q = c.new_net("q")
    d = c.add_gate(GateFn.NOT, [q]).output
    c.add_register(d, q=q, clk=clk, **kwargs)
    c.add_output(q)
    return c


class TestInsertPipelineLayers:
    def test_inserts_per_distinct_output(self):
        c = build_design("C2", scale=0.4).circuit
        distinct = len(dict.fromkeys(c.outputs))
        out, inserted = insert_pipeline_layers(c, 3)
        check_circuit(out)
        assert inserted == 3 * distinct
        assert len(out.registers) == len(c.registers) + inserted

    def test_shared_output_nets_share_chains(self):
        c = _counter()
        c.add_output(c.outputs[0])  # same net listed twice
        out, inserted = insert_pipeline_layers(c, 2)
        check_circuit(out)
        assert inserted == 2
        assert out.outputs[0] == out.outputs[1]

    def test_zero_stages_is_plain_clone(self):
        c = build_design("C2", scale=0.3).circuit
        out, inserted = insert_pipeline_layers(c, 0)
        assert inserted == 0
        assert write_blif(out) == write_blif(c)

    def test_input_untouched(self):
        c = _counter()
        before = write_blif(c)
        insert_pipeline_layers(c, 4)
        assert write_blif(c) == before

    def test_inserted_registers_are_plain(self):
        c = _counter(en=True, ar=True)
        out, _ = insert_pipeline_layers(c, 2)
        new = [
            r
            for name, r in out.registers.items()
            if name not in c.registers
        ]
        assert new and all(
            not (r.has_enable or r.has_sync_reset or r.has_async_reset)
            for r in new
        )

    def test_negative_stages_rejected(self):
        with pytest.raises(PipelineError):
            insert_pipeline_layers(_counter(), -1)


class TestCSlowTransform:
    def test_replica_counts(self):
        c = build_design("C2", scale=0.4).circuit
        n = len(c.registers)
        out, counts = cslow_transform(c, 3)
        check_circuit(out)
        assert counts["registers_replicated"] == 2 * n
        assert len(out.registers) == 3 * n

    def test_fold_counts_match_register_shapes(self):
        c = build_design("C5", scale=0.4).circuit
        regs = c.registers.values()
        _, counts = cslow_transform(c, 2)
        assert counts["enables_folded"] == sum(
            1 for r in regs if r.has_enable
        )
        assert counts["sync_resets_folded"] == sum(
            1 for r in regs if r.has_sync_reset
        )
        assert counts["async_resets_folded"] == sum(
            1 for r in regs if r.has_async_reset
        )
        assert counts["async_resets_folded"] > 0  # C5 exercises AR

    def test_all_registers_become_plain(self):
        c = _counter(en=True, sr=True, ar=True)
        out, counts = cslow_transform(c, 2)
        check_circuit(out)
        assert counts == {
            "registers_replicated": 1,
            "enables_folded": 1,
            "sync_resets_folded": 1,
            "async_resets_folded": 1,
        }
        assert all(
            not (r.has_enable or r.has_sync_reset or r.has_async_reset)
            for r in out.registers.values()
        )

    def test_factor_one_is_plain_clone(self):
        c = build_design("C2", scale=0.3).circuit
        out, counts = cslow_transform(c, 1)
        assert counts["registers_replicated"] == 0
        assert write_blif(out) == write_blif(c)

    def test_input_untouched(self):
        c = _counter(en=True)
        before = write_blif(c)
        cslow_transform(c, 3)
        assert write_blif(c) == before

    def test_factor_zero_rejected(self):
        with pytest.raises(PipelineError):
            cslow_transform(_counter(), 0)

    def test_multi_clock_rejected(self):
        c = _counter()
        clk2 = c.add_input("clk2")
        from repro.netlist import GateFn

        q2 = c.new_net("q2")
        d2 = c.add_gate(GateFn.NOT, [q2]).output
        c.add_register(d2, q=q2, clk=clk2)
        c.add_output(q2)
        with pytest.raises(PipelineError, match="single clock"):
            cslow_transform(c, 2)
