"""Verification-side tests: the latency-shifted pipeline check and the
thread-interleaving C-slow refinement check, including mutant kills for
the two classically-wrong C-slow constructions (controls broadcast onto
the replicas instead of folded into the D path)."""

import pytest

from repro.netlist import Circuit
from repro.pipeline import cslow_retime, cslow_transform, pipeline_retime
from repro.synth import build_datapath, build_design
from repro.verify import check_cslow, check_pipeline


class TestCheckPipeline:
    @pytest.mark.parametrize("name", ["C2", "C5"])
    def test_designs_pass(self, name):
        c = build_design(name, scale=0.4).circuit
        result = pipeline_retime(c, 2)
        check = check_pipeline(c, result.circuit, shift=2, cycles=32)
        assert check.equivalent, check.reason
        assert check.shift == 2

    def test_wrong_shift_fails(self):
        c = build_datapath("NTT4").circuit
        result = pipeline_retime(c, 2)
        check = check_pipeline(c, result.circuit, shift=1, cycles=32)
        assert not check.equivalent


class TestCheckCSlow:
    @pytest.mark.parametrize("name", ["C2", "C5"])
    def test_designs_pass(self, name):
        c = build_design(name, scale=0.4).circuit
        result = cslow_retime(c, 3)
        check = check_cslow(c, result.circuit, 3, cycles=24)
        assert check.equivalent, check.reason

    def test_datapath_passes_through_retime(self):
        c = build_datapath("MAC6").circuit
        result = cslow_retime(c, 2)
        check = check_cslow(c, result.circuit, 2, cycles=24)
        assert check.equivalent, check.reason

    def test_raw_transform_passes(self):
        c = build_design("C7", scale=0.3).circuit
        out, _ = cslow_transform(c, 2)
        check = check_cslow(c, out, 2, cycles=24)
        assert check.equivalent, check.reason


def _naive_cslow(circuit: Circuit, factor: int, keep: str) -> Circuit:
    """The wrong construction: replicate registers but *broadcast* the
    kept control (EN or AR) onto every replica instead of folding it
    into the D path."""
    work = circuit.clone()
    for reg in list(work.registers.values()):
        d, clk, q, name = reg.d, reg.clk, reg.q, reg.name
        spec = dict(
            en=reg.en, sr=reg.sr, ar=reg.ar, sval=reg.sval, aval=reg.aval
        )
        work.remove_register(name)
        prev = d
        for _ in range(factor - 1):
            kwargs = {}
            if keep == "en" and spec["en"] is not None:
                kwargs = {"en": spec["en"]}
            elif keep == "ar" and spec["ar"] is not None:
                kwargs = {"ar": spec["ar"], "aval": spec["aval"]}
            prev = work.add_register(prev, clk=clk, **kwargs).q
        work.add_register(prev, q=q, name=name, clk=clk, **spec)
    return work


class TestMutantKills:
    def test_enable_on_replicas_killed(self):
        # a stalled enable freezes the whole chain and misaligns every
        # other thread; the refinement check must catch it
        killed = False
        for name in ("C5", "C2"):
            c = build_design(name, scale=0.4).circuit
            mutant = _naive_cslow(c, 3, keep="en")
            if not check_cslow(c, mutant, 3, cycles=32).equivalent:
                killed = True
                break
        assert killed

    def test_async_reset_on_replicas_killed(self):
        # broadcast AR forces every replica on the first edge of an
        # assertion superperiod: threads k >= 1 observe post-reset
        # state one thread-cycle early
        killed = False
        for name in ("C5", "MAC6"):
            c = (
                build_datapath(name).circuit
                if name == "MAC6"
                else build_design(name, scale=0.4).circuit
            )
            mutant = _naive_cslow(c, 3, keep="ar")
            if not check_cslow(c, mutant, 3, cycles=32).equivalent:
                killed = True
                break
        assert killed
