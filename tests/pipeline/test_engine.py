"""Engine-level pipeline/C-slow tests, incl. the trivial-config
differentials: ``stages=0`` / ``factor=1`` must be byte-identical to a
plain ``mc_retime`` run with the same arguments."""

from repro.mcretime import mc_retime
from repro.netlist import check_circuit, write_blif
from repro.pipeline import (
    cslow_retime,
    insert_pipeline_layers,
    pipeline_retime,
)
from repro.synth import build_datapath, build_design


class TestTrivialConfigDifferentials:
    def test_zero_stage_pipeline_matches_plain_retime(self):
        c = build_design("C2", scale=0.4).circuit
        plain = mc_retime(c, objective="minperiod")
        result = pipeline_retime(c, 0)
        assert result.registers_inserted == 0
        assert write_blif(result.circuit) == write_blif(plain.circuit)

    def test_factor_one_cslow_matches_plain_retime(self):
        c = build_design("C5", scale=0.4).circuit
        plain = mc_retime(c, objective="minperiod")
        result = cslow_retime(c, 1)
        assert result.registers_replicated == 0
        assert write_blif(result.circuit) == write_blif(plain.circuit)

    def test_trivial_configs_respect_objective(self):
        c = build_design("C2", scale=0.3).circuit
        plain = mc_retime(c, objective="minarea")
        result = cslow_retime(c, 1, objective="minarea")
        assert write_blif(result.circuit) == write_blif(plain.circuit)


class TestPipelineRetime:
    def test_speedup_and_bound(self):
        c = build_datapath("MODMUL6").circuit
        result = pipeline_retime(c, 2)
        check_circuit(result.circuit)
        assert result.period_after < result.period_before
        assert result.period_after >= result.lower_bound
        assert abs(
            result.balance_slack
            - (result.period_after - result.lower_bound)
        ) < 1e-9
        assert result.ff_after >= result.ff_before

    def test_classes_tracked(self):
        c = build_datapath("NTT4").circuit
        result = pipeline_retime(c, 1)
        assert sum(result.classes_before.values()) == result.ff_before
        assert sum(result.classes_after.values()) == result.ff_after


class TestRelocationDeadlockRecovery:
    def test_mapped_pipeline_recovers_from_scheduler_wedge(self):
        # mapped feed-forward datapaths historically wedged the unit-move
        # scheduler (mixed-direction lags on multi-fanout carry nets);
        # the engine must clamp the stuck gates and re-solve instead of
        # raising RelocationError
        from repro.flows import baseline_flow
        from repro.mcretime import mc_retime
        from repro.timing import XC4000E_DELAY

        base = baseline_flow(build_datapath("MODMUL6").circuit)
        work, _ = insert_pipeline_layers(base.circuit, 2)
        result = mc_retime(
            work, delay_model=XC4000E_DELAY, objective="minperiod"
        )
        check_circuit(result.circuit)
        assert result.period_after <= result.period_before


class TestCSlowRetime:
    def test_throughput_gain_on_datapath(self):
        c = build_datapath("MAC6").circuit
        result = cslow_retime(c, 3)
        check_circuit(result.circuit)
        assert result.throughput_gain >= 2.0
        assert result.thread_period == 3 * result.period_after
        assert result.registers_replicated == 2 * result.ff_before

    def test_fold_counts_surface(self):
        c = build_datapath("NTT4").circuit
        result = cslow_retime(c, 2)
        assert result.enables_folded > 0
        assert result.async_resets_folded > 0
        # post-transform, every register class collapses to plain
        assert set(result.classes_after) == {"plain"}
