"""Sink output formats: JSONL framing, Chrome trace schema, reports."""

import json

import pytest

from repro import obs
from repro.obs import report


def trace_something(**session_kwargs):
    """Run a small traced workload through obs.session."""
    with obs.session(**session_kwargs) as tracer:
        with obs.span("outer", phi=3):
            with obs.span("inner"):
                obs.count("iterations", 4)
            obs.gauge("size", 17)
        with obs.span("outer"):
            pass
    return tracer


class TestJsonlSink:
    def test_framing_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "run.jsonl"
        trace_something(jsonl=path)
        lines = path.read_text().splitlines()
        assert len(lines) >= 5  # meta + 3 spans + counter + gauge + end
        events = [json.loads(line) for line in lines]
        assert all(isinstance(e, dict) for e in events)
        assert events[0]["type"] == "meta"
        assert events[-1]["type"] == "end"
        assert "" not in lines

    def test_validate_jsonl_accepts_real_output(self, tmp_path):
        path = tmp_path / "run.jsonl"
        trace_something(jsonl=path)
        report.validate_jsonl(path)  # must not raise

    def test_validate_jsonl_rejects_tampering(self, tmp_path):
        path = tmp_path / "run.jsonl"
        trace_something(jsonl=path)
        text = path.read_text()
        bad = tmp_path / "bad.jsonl"

        bad.write_text(text.replace("\n", "\n\n", 1))
        with pytest.raises(ValueError):
            report.validate_jsonl(bad)

        bad.write_text("not json\n" + text)
        with pytest.raises(ValueError):
            report.validate_jsonl(bad)

    def test_round_trip_preserves_span_totals_exactly(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = trace_something(jsonl=path)
        events = obs.load_events(path)
        assert report.span_totals(events) == tracer.span_totals()
        assert report.counters(events) == tracer.counters

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "down" / "run.jsonl"
        trace_something(jsonl=path)
        assert path.exists()


class TestChromeTraceSink:
    def test_schema(self, tmp_path):
        path = tmp_path / "trace.json"
        trace_something(trace=path)
        data = json.loads(path.read_text())
        assert isinstance(data["traceEvents"], list)
        assert data["traceEvents"], "no events recorded"
        phases = {e["ph"] for e in data["traceEvents"]}
        assert "X" in phases  # complete spans
        assert "M" in phases  # process_name metadata
        for event in data["traceEvents"]:
            assert "name" in event and "pid" in event
            if event["ph"] == "X":
                # timestamps in microseconds, non-negative duration
                assert event["dur"] >= 0
                assert isinstance(event["ts"], (int, float))
        report.validate_chrome_trace(path)  # must not raise

    def test_span_args_and_counters_survive(self, tmp_path):
        path = tmp_path / "trace.json"
        trace_something(trace=path)
        data = json.loads(path.read_text())
        outer = [
            e for e in data["traceEvents"]
            if e["ph"] == "X" and e["name"] == "outer"
        ]
        assert any(e.get("args", {}).get("phi") == 3 for e in outer)
        assert data["otherData"]["counters"] == {"iterations": 4}

    def test_counter_events_render_as_C_phase(self, tmp_path):
        path = tmp_path / "trace.json"
        trace_something(trace=path)
        data = json.loads(path.read_text())
        counters = [e for e in data["traceEvents"] if e["ph"] == "C"]
        assert counters and counters[0]["args"]["value"] == 4

    def test_validate_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": []}')
        with pytest.raises(ValueError):
            report.validate_chrome_trace(bad)
        bad.write_text("[1, 2]")
        with pytest.raises(ValueError):
            report.validate_chrome_trace(bad)

    def test_load_events_reconstructs_nesting(self, tmp_path):
        path = tmp_path / "trace.json"
        tracer = trace_something(trace=path)
        events = obs.load_events(path)
        spans = [e for e in events if e["type"] == "span"]
        by_name = {}
        for e in spans:
            by_name.setdefault(e["name"], []).append(e)
        outer_ids = {e["id"] for e in by_name["outer"]}
        assert by_name["inner"][0]["parent"] in outer_ids
        assert report.counters(events) == tracer.counters


class TestRenderSummary:
    def test_summary_tree_contents(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = trace_something(jsonl=path)
        for text in (tracer.summary(), obs.render_summary(obs.load_events(path))):
            assert tracer.trace_id[:16] in text
            assert "outer" in text and "inner" in text
            assert "iterations" in text
            assert "size" in text
            # inner is indented under outer
            outer_line = next(
                line for line in text.splitlines() if "outer" in line
            )
            inner_line = next(
                line for line in text.splitlines() if "inner" in line
            )
            indent = lambda s: len(s) - len(s.lstrip())
            assert indent(inner_line) > indent(outer_line)

    def test_cpu_split_requires_engine_spans(self):
        assert report.cpu_split({"flow.map": 1.0}) is None
        split = report.cpu_split(
            {
                "engine.build": 1.0,
                "engine.minperiod": 2.0,
                "engine.minarea": 3.0,
                "engine.relocate": 4.0,
            }
        )
        # fractions of the engine total (5 + 4 + 1 = 10 seconds)
        assert split == {
            "basic_retiming": 0.5,
            "relocation": 0.4,
            "mc_overhead": 0.1,
        }


class TestSession:
    def test_nested_sessions_join_outer_trace(self, tmp_path):
        with obs.session(jsonl=tmp_path / "outer.jsonl") as outer:
            with obs.session(jsonl=tmp_path / "inner.jsonl") as inner:
                assert inner is None
                with obs.span("work"):
                    pass
        assert outer is not None
        assert not (tmp_path / "inner.jsonl").exists()
        assert "work" in outer.span_totals()

    def test_configure_from_env(self, tmp_path):
        env = {"REPRO_TRACE_LOG": str(tmp_path / "env.jsonl")}
        with obs.configure_from_env(env) as tracer:
            assert tracer is not None
            with obs.span("work"):
                pass
        report.validate_jsonl(tmp_path / "env.jsonl")

    def test_configure_from_env_disabled(self):
        with obs.configure_from_env({}) as tracer:
            assert tracer is None
            assert not obs.enabled()
