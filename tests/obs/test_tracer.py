"""Core tracer semantics: spans, counters, gauges, disabled no-ops."""

import threading

import pytest

from repro import obs


def span_events(tracer):
    return [e for e in tracer.events if e["type"] == "span"]


class TestSpanNesting:
    def test_parent_child_ids_and_depth(self):
        t = obs.start()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        obs.stop()
        inner, outer = span_events(t)  # events close inner-first
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["id"]
        assert inner["depth"] == 1
        assert outer["parent"] == 0
        assert outer["depth"] == 0

    def test_self_time_excludes_children(self):
        t = obs.start()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        obs.stop()
        inner, outer = span_events(t)
        assert outer["self"] == pytest.approx(outer["dur"] - inner["dur"])
        assert inner["self"] == inner["dur"]

    def test_span_args_and_set(self):
        t = obs.start()
        with obs.span("s", phi=4) as sp:
            sp.set(rounds=7)
        obs.stop()
        (event,) = span_events(t)
        assert event["args"] == {"phi": 4, "rounds": 7}

    def test_sibling_spans_share_parent(self):
        t = obs.start()
        with obs.span("outer"):
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        obs.stop()
        a, b, outer = span_events(t)
        assert a["parent"] == b["parent"] == outer["id"]

    def test_per_thread_stacks(self):
        t = obs.start()
        seen = {}

        def worker():
            with obs.span("thread_span"):
                pass
            seen["done"] = True

        with obs.span("main_span"):
            th = threading.Thread(target=worker)
            th.start()
            th.join()
        obs.stop()
        assert seen["done"]
        by_name = {e["name"]: e for e in span_events(t)}
        # the other thread's span must NOT nest under main's open span
        assert by_name["thread_span"]["parent"] == 0
        assert by_name["thread_span"]["tid"] != by_name["main_span"]["tid"]


class TestExceptionSafety:
    def test_exception_marks_span_and_unwinds(self):
        t = obs.start()
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError("x")
        # the stack unwound: a new span is again top-level
        with obs.span("after"):
            pass
        obs.stop()
        boom, after = span_events(t)
        assert boom.get("error") is True
        assert "error" not in after
        assert after["parent"] == 0

    def test_abandoned_inner_spans_are_popped(self):
        t = obs.start()
        outer = t.span("outer")
        outer.__enter__()
        # enter an inner span and never exit it (simulates a lost handle)
        t.span("lost").__enter__()
        outer.__exit__(None, None, None)
        with obs.span("next"):
            pass
        obs.stop()
        by_name = {e["name"]: e for e in span_events(t)}
        assert by_name["next"]["parent"] == 0
        assert by_name["next"]["depth"] == 0


class TestCounters:
    def test_aggregation_across_increments(self):
        t = obs.start()
        obs.count("x")
        obs.count("x", 4)
        obs.count("y", 2.5)
        obs.stop()
        assert t.counters == {"x": 5, "y": 2.5}
        end = t.events[-1]
        assert end["type"] == "end"
        assert end["counters"] == {"x": 5, "y": 2.5}

    def test_counter_events_are_cumulative(self):
        t = obs.start()
        obs.count("x", 2)
        obs.count("x", 3)
        obs.stop()
        values = [e["value"] for e in t.events if e["type"] == "counter"]
        assert values == [2, 5]

    def test_attribution_to_innermost_open_span(self):
        t = obs.start()
        with obs.span("outer"):
            obs.count("k")
            with obs.span("inner"):
                obs.count("k", 9)
        obs.stop()
        inner, outer = span_events(t)
        assert inner["counters"] == {"k": 9}
        assert outer["counters"] == {"k": 1}
        assert t.counters == {"k": 10}

    def test_gauge_stats(self):
        t = obs.start()
        for v in (5, 1, 3):
            obs.gauge("g", v)
        obs.stop()
        stat = t.gauges["g"]
        assert stat == {"count": 3, "sum": 9.0, "min": 1, "max": 5, "last": 3}


class TestDisabledMode:
    def test_span_is_shared_noop_singleton(self):
        assert not obs.enabled()
        assert obs.span("anything", probe=1) is obs.NULL_SPAN
        with obs.span("x") as sp:
            sp.set(a=1)
        assert sp.duration == 0.0

    def test_count_and_gauge_are_noops(self):
        obs.count("x", 5)
        obs.gauge("g", 1.0)
        assert obs.current() is None

    def test_timed_still_measures(self):
        with obs.timed("stage") as sp:
            pass
        assert isinstance(sp, obs.Stopwatch)
        assert sp.duration > 0.0

    def test_timed_returns_real_span_when_enabled(self):
        t = obs.start()
        with obs.timed("stage") as sp:
            pass
        obs.stop()
        assert isinstance(sp, obs.Span)
        assert t.span_totals() == {"stage": sp.duration}


class TestSpanTotals:
    def test_totals_sum_in_event_order(self):
        t = obs.start()
        durations = []
        for _ in range(3):
            with obs.span("phase") as sp:
                pass
            durations.append(sp.duration)
        obs.stop()
        # exact left-to-right float summation, like timings[k] += dur
        expected = 0.0
        for d in durations:
            expected += d
        assert t.span_totals()["phase"] == expected

    def test_snapshot_is_json_safe(self):
        import json

        t = obs.start(trace_id="abc123")
        with obs.span("s"):
            obs.count("c", 2)
            obs.gauge("g", 7)
        obs.stop()
        snap = t.snapshot()
        assert snap["trace_id"] == "abc123"
        assert snap["counters"] == {"c": 2}
        assert json.loads(json.dumps(snap)) == snap


class TestStageClock:
    def test_accumulates_and_finalizes(self):
        clock = obs.StageClock()
        with clock.stage("map"):
            pass
        with clock.stage("map"):
            pass
        with clock.stage("retime", "flow.retime", objective="minarea"):
            pass
        timings = clock.done()
        assert set(timings) == {"map", "retime", "total"}
        assert timings["total"] == timings["map"] + timings["retime"]

    def test_seed_drops_stale_total(self):
        clock = obs.StageClock(seed={"optimize": 1.0, "total": 1.0})
        with clock.stage("retime"):
            pass
        timings = clock.done()
        assert timings["total"] == pytest.approx(1.0 + timings["retime"])

    def test_finalize_total(self):
        timings = {"a": 1.0, "b": 2.0, "total": 99.0}
        assert obs.finalize_total(timings)["total"] == 3.0
