"""End-to-end tracing of the retiming pipeline.

The acceptance bar for the obs layer: a traced ``mc_retime`` run emits
spans whose per-name totals reproduce ``MCRetimeResult.timings``
*exactly* (same floats, not approximately), counters for the paper's
algorithm internals appear, and disabling tracing changes nothing about
the retimed netlist.
"""

import json
from pathlib import Path

from repro import obs
from repro.mcretime import mc_retime
from repro.netlist import read_blif, write_blif
from repro.obs import report
from repro.timing import UNIT_DELAY

DATA = Path(__file__).resolve().parent.parent / "data"


def load(name):
    return read_blif((DATA / f"{name}.blif").read_text(), name_hint=name)


class TestTimingsFromSpans:
    def test_engine_timings_equal_span_totals_exactly(self):
        tracer = obs.start()
        try:
            result = mc_retime(load("c2_small"), delay_model=UNIT_DELAY)
        finally:
            obs.stop()
        totals = tracer.span_totals()
        assert result.timings  # sanity: phases were recorded
        for phase, seconds in result.timings.items():
            if phase == "total":
                continue
            assert totals[f"engine.{phase}"] == seconds, phase

    def test_jsonl_reproduces_timings_exactly(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.session(jsonl=path):
            result = mc_retime(load("c2_small"), delay_model=UNIT_DELAY)
        totals = report.span_totals(obs.load_events(path))
        for phase, seconds in result.timings.items():
            if phase == "total":
                continue
            assert totals[f"engine.{phase}"] == seconds, phase


class TestAlgorithmCounters:
    def test_acceptance_counters_present(self):
        tracer = obs.start()
        try:
            mc_retime(load("c3_small"), delay_model=UNIT_DELAY)
        finally:
            obs.stop()
        counters = tracer.counters
        # the ISSUE acceptance triplet
        assert counters.get("feas.passes", 0) > 0
        assert counters.get("bf.rounds", 0) > 0
        assert counters.get("mcf.augmentations", 0) > 0
        # supporting internals
        assert counters.get("minperiod.probes", 0) > 0
        assert counters.get("minarea.rounds", 0) > 0
        assert "minperiod.phi" in tracer.gauges

    def test_counters_attributed_to_phase_spans(self):
        tracer = obs.start()
        try:
            mc_retime(load("c2_small"), delay_model=UNIT_DELAY)
        finally:
            obs.stop()
        feas = [
            e for e in tracer.events
            if e["type"] == "span" and e["name"] == "minperiod.feas"
        ]
        assert feas
        assert any(e.get("counters", {}).get("feas.passes") for e in feas)


class TestDisabledIdentity:
    def test_same_retimed_netlist_bytes(self):
        untraced = mc_retime(load("c2_small"), delay_model=UNIT_DELAY)
        tracer = obs.start()
        try:
            traced = mc_retime(load("c2_small"), delay_model=UNIT_DELAY)
        finally:
            obs.stop()
        assert write_blif(traced.circuit) == write_blif(untraced.circuit)
        assert tracer.events  # the traced run really did record spans
        assert traced.period_after == untraced.period_after
        assert traced.ff_after == untraced.ff_after

    def test_no_tracer_installed_after_run(self):
        mc_retime(load("c2_small"), delay_model=UNIT_DELAY)
        assert not obs.enabled()


class TestChromeExportOfRealRun:
    def test_trace_is_perfetto_loadable_schema(self, tmp_path):
        path = tmp_path / "trace.json"
        with obs.session(trace=path):
            mc_retime(load("c2_small"), delay_model=UNIT_DELAY)
        report.validate_chrome_trace(path)
        data = json.loads(path.read_text())
        names = {
            e["name"] for e in data["traceEvents"] if e["ph"] == "X"
        }
        assert "engine.minperiod" in names
        assert "minperiod.feas" in names
