"""Cross-process tracing: worker traces keyed by job id, span metrics.

``RetimeService(trace_dir=...)`` must propagate the trace configuration
into worker processes, have each worker write a per-job JSONL whose
trace id **is** the job's canonical key, ship span totals back in
``metrics["obs"]``, and bridge them into the
``repro_span_seconds{span=...}`` histogram.
"""

import json
from pathlib import Path

import pytest

from repro.obs import report
from repro.service import RetimeJob, RetimeService

DATA = Path(__file__).resolve().parent.parent / "data"


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    trace_dir = tmp_path_factory.mktemp("traces")
    service = RetimeService(
        workers=1, job_timeout=120.0, max_retries=1, trace_dir=trace_dir
    )
    try:
        job = RetimeJob.from_file(DATA / "c2_small.blif")
        result = service.batch([job])[0]
        metrics_text = service.metrics.render()
    finally:
        service.close()
    assert result.ok, result.error
    return job, result, trace_dir, metrics_text


class TestCrossProcessPropagation:
    def test_worker_writes_per_job_jsonl(self, traced_run):
        job, _result, trace_dir, _ = traced_run
        path = trace_dir / f"{job.canonical_key[:16]}.jsonl"
        assert path.exists()
        report.validate_jsonl(path)

    def test_trace_id_is_canonical_job_key(self, traced_run):
        job, result, trace_dir, _ = traced_run
        path = trace_dir / f"{job.canonical_key[:16]}.jsonl"
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert events[0]["trace_id"] == job.canonical_key
        assert events[-1]["trace_id"] == job.canonical_key
        assert result.metrics["obs"]["trace_id"] == job.canonical_key

    def test_worker_trace_covers_the_engine(self, traced_run):
        job, result, trace_dir, _ = traced_run
        path = trace_dir / f"{job.canonical_key[:16]}.jsonl"
        totals = report.span_totals(report.load_events(path))
        assert "job.execute" in totals
        assert "engine.minperiod" in totals
        # the snapshot shipped in metrics matches the file the worker wrote
        assert result.metrics["obs"]["spans"] == totals

    def test_span_totals_reproduce_job_timings(self, traced_run):
        _job, result, _trace_dir, _ = traced_run
        spans = result.metrics["obs"]["spans"]
        for phase, seconds in result.metrics["timings"].items():
            if phase == "total":
                continue
            assert spans[f"engine.{phase}"] == seconds, phase

    def test_span_seconds_histogram_bridged(self, traced_run):
        _job, _result, _trace_dir, metrics_text = traced_run
        assert 'repro_span_seconds_count{span="job.execute"} 1' in metrics_text
        assert 'span="engine.minperiod"' in metrics_text


class TestUntracedService:
    def test_no_trace_dir_means_no_obs_payload(self):
        service = RetimeService(workers=1, job_timeout=120.0, max_retries=1)
        try:
            job = RetimeJob.from_file(DATA / "c2_small.blif")
            result = service.batch([job])[0]
        finally:
            service.close()
        assert result.ok, result.error
        assert "obs" not in result.metrics
