"""The run ledger: schema, round-trip, tolerance, rotation."""

import json

import pytest

from repro import obs
from repro.obs import ledger as ledger_mod


class TestRecordSchema:
    def test_build_record_minimal(self):
        record = obs.build_record(kind="test", run_id="abc", ts=1.0)
        assert record["schema"] == ledger_mod.SCHEMA
        assert record["kind"] == "test"
        assert record["run_id"] == "abc"
        assert record["spans"] == {}
        assert "python" in record["env"]
        assert "git_sha" in record["env"]

    def test_build_record_full(self):
        record = obs.build_record(
            kind="bench.x",
            run_id="r1",
            fingerprint="f" * 64,
            config={"scale": 0.3},
            spans={"a": 1.0},
            self_times={"a": 0.5},
            counters={"c": 3},
            metrics={"period": 12.5},
        )
        assert obs.record_errors(record) == []

    def test_missing_required_fields(self):
        errors = obs.record_errors({"schema": ledger_mod.SCHEMA})
        joined = "; ".join(errors)
        assert "run_id" in joined and "kind" in joined and "ts" in joined

    def test_wrong_types_collected(self):
        record = obs.build_record(kind="t", run_id="r", ts=1.0)
        record["spans"] = {"a": "not a number"}
        record["config"] = []
        errors = obs.record_errors(record)
        assert any("spans" in e for e in errors)
        assert any("config" in e for e in errors)

    def test_unknown_schema_rejected(self):
        record = obs.build_record(kind="t", run_id="r", ts=1.0)
        record["schema"] = "repro.run/99"
        assert any("schema" in e for e in obs.record_errors(record))

    def test_validate_raises(self):
        with pytest.raises(ValueError, match="run_id"):
            obs.validate_record({"schema": ledger_mod.SCHEMA})

    def test_bool_is_not_a_number(self):
        record = obs.build_record(kind="t", run_id="r", ts=1.0)
        record["counters"] = {"flag": True}
        assert any("counters" in e for e in obs.record_errors(record))


class TestRoundTrip:
    def test_append_load(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = obs.RunLedger(path)
        for i in range(3):
            ledger.append(
                obs.build_record(
                    kind="t", run_id=f"r{i}", ts=float(i), spans={"a": i * 1.0}
                )
            )
        loaded = obs.RunLedger(path).load()
        assert [r["run_id"] for r in loaded] == ["r0", "r1", "r2"]
        assert loaded[2]["spans"] == {"a": 2.0}

    def test_append_validates(self, tmp_path):
        ledger = obs.RunLedger(tmp_path / "runs.jsonl")
        with pytest.raises(ValueError):
            ledger.append({"kind": "t"})

    def test_tail(self, tmp_path):
        ledger = obs.RunLedger(tmp_path / "runs.jsonl")
        for i in range(5):
            ledger.append(obs.build_record(kind="t", run_id=f"r{i}", ts=float(i)))
        assert [r["run_id"] for r in ledger.tail(2)] == ["r3", "r4"]


class TestTolerance:
    def test_corrupt_lines_skipped_and_counted(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = obs.RunLedger(path)
        ledger.append(obs.build_record(kind="t", run_id="good", ts=1.0))
        with path.open("a") as fh:
            fh.write("{torn json\n")
            fh.write(json.dumps({"kind": "no-schema"}) + "\n")
        ledger.append(obs.build_record(kind="t", run_id="good2", ts=2.0))
        records = ledger.load()
        assert [r["run_id"] for r in records] == ["good", "good2"]
        assert ledger.skipped == 2

    def test_strict_raises_with_line_number(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        obs.RunLedger(path).append(
            obs.build_record(kind="t", run_id="r", ts=1.0)
        )
        path.open("a").write("garbage\n")
        with pytest.raises(ValueError, match=":2:"):
            obs.RunLedger(path).load(strict=True)

    def test_missing_file_is_empty(self, tmp_path):
        assert obs.RunLedger(tmp_path / "absent.jsonl").load() == []


class TestRotation:
    def test_explicit_rotate(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = obs.RunLedger(path)
        for i in range(10):
            ledger.append(obs.build_record(kind="t", run_id=f"r{i}", ts=float(i)))
        rotated = ledger.rotate(keep=3)
        assert rotated == 7
        assert [r["run_id"] for r in ledger.load()] == ["r7", "r8", "r9"]
        backup = obs.RunLedger(path.with_name(path.name + ".1")).load()
        assert [r["run_id"] for r in backup] == [f"r{i}" for i in range(7)]

    def test_auto_rotate_on_append(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = obs.RunLedger(path, max_records=4)
        for i in range(9):
            ledger.append(obs.build_record(kind="t", run_id=f"r{i}", ts=float(i)))
        assert len(ledger.load()) <= 4
        assert ledger.load()[-1]["run_id"] == "r8"

    def test_rotate_noop_when_small(self, tmp_path):
        ledger = obs.RunLedger(tmp_path / "runs.jsonl")
        ledger.append(obs.build_record(kind="t", run_id="r", ts=1.0))
        assert ledger.rotate(keep=5) == 0


class TestTracerIntegration:
    def test_record_from_tracer(self):
        tracer = obs.start(trace_id="tid-1")
        with obs.span("phase.a"):
            with obs.span("phase.b"):
                pass
        obs.count("widgets", 3)
        obs.annotate(period=12.5)
        obs.stop()
        record = obs.record_from_tracer(
            tracer, "test.run", metrics=dict(tracer.results)
        )
        assert record["run_id"] == "tid-1"
        assert "phase.a" in record["spans"]
        assert "phase.a" in record["self_times"]
        assert record["counters"]["widgets"] == 3
        assert record["metrics"]["period"] == 12.5

    def test_session_writes_ledger(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        with obs.session(ledger=path, ledger_kind="test.session"):
            with obs.span("work"):
                pass
            obs.annotate(answer=42)
        records = obs.RunLedger(path).load()
        assert len(records) == 1
        assert records[0]["kind"] == "test.session"
        assert "work" in records[0]["spans"]
        assert records[0]["metrics"]["answer"] == 42


class TestFingerprint:
    def test_format_invariant(self):
        from repro.netlist import read_blif

        a = read_blif(
            ".model m\n.inputs a clk\n.outputs y\n"
            ".latch a q re clk 0\n.names q y\n1 1\n.end\n"
        )
        b = read_blif(
            "# a comment\n.model m\n.inputs  a   clk\n.outputs y\n"
            ".latch a q re clk 0\n\n.names q y\n1 1\n.end\n"
        )
        assert obs.design_fingerprint(a) == obs.design_fingerprint(b)
        assert len(obs.design_fingerprint(a)) == 64
