"""The perf-regression sentinel: grouping, thresholds, CLI gating."""

import pytest

from repro import obs
from repro.obs import sentinel
from repro.tools.cli import main as cli_main


def _rec(kind="bench.x", ts=1.0, fingerprint=None, **spans):
    return obs.build_record(
        kind=kind,
        run_id=f"r{ts}",
        ts=ts,
        fingerprint=fingerprint,
        self_times={k: float(v) for k, v in spans.items()},
    )


class TestGrouping:
    def test_group_medians_median_of_k(self):
        records = [_rec(ts=float(i), hot=v) for i, v in enumerate([1, 9, 2, 8, 3])]
        medians = sentinel.group_medians(records, window=5)
        assert medians["bench.x"]["hot"] == 3.0

    def test_window_keeps_newest(self):
        records = [_rec(ts=float(i), hot=float(i)) for i in range(10)]
        medians = sentinel.group_medians(records, window=3)
        assert medians["bench.x"]["hot"] == 8.0

    def test_fingerprint_splits_groups(self):
        records = [
            _rec(ts=1.0, fingerprint="a" * 64, hot=1.0),
            _rec(ts=2.0, fingerprint="b" * 64, hot=100.0),
        ]
        medians = sentinel.group_medians(records)
        assert len(medians) == 2
        assert medians["bench.x:" + "a" * 12]["hot"] == 1.0

    def test_spans_fallback_when_no_self_times(self):
        record = obs.build_record(
            kind="k", run_id="r", ts=1.0, spans={"a": 2.0}
        )
        assert sentinel.group_medians([record])["k"]["a"] == 2.0


class TestDiff:
    def test_regression_flagged(self):
        report = sentinel.diff([_rec(hot=0.1)], [_rec(hot=0.5)])
        assert not report.ok
        (delta,) = report.regressions
        assert delta.span == "hot"
        assert delta.ratio == pytest.approx(5.0)

    def test_noise_floor_suppresses_tiny_spans(self):
        # 10x slower but only by 90 microseconds: never gates
        report = sentinel.diff([_rec(hot=0.00001)], [_rec(hot=0.0001)])
        assert report.ok

    def test_within_threshold_ok(self):
        report = sentinel.diff([_rec(hot=0.100)], [_rec(hot=0.140)])
        assert report.ok
        assert len(report.deltas) == 1

    def test_unmatched_groups_reported_not_compared(self):
        report = sentinel.diff(
            [_rec(kind="only.base", hot=1.0)], [_rec(kind="only.cur", hot=1.0)]
        )
        assert report.ok
        assert set(report.unmatched) == {"only.base", "only.cur"}

    def test_relative_mode_ignores_uniform_scaling(self):
        base = [_rec(a=0.1, b=0.3)]
        # a uniformly 3x slower machine: shares unchanged
        cur = [_rec(a=0.3, b=0.9)]
        assert not sentinel.diff(base, cur, mode="relative").regressions
        assert len(sentinel.diff(base, cur, mode="absolute").regressions) == 2

    def test_relative_mode_catches_share_shift(self):
        base = [_rec(a=0.1, b=0.1)]
        cur = [_rec(a=0.5, b=0.1)]  # span a ballooned relative to b
        report = sentinel.diff(base, cur, mode="relative", threshold=1.5)
        assert [d.span for d in report.regressions] == ["a"]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            sentinel.diff([], [], mode="bogus")


class TestCheck:
    def test_inject_slowdown_fires(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = obs.RunLedger(path)
        ledger.append(_rec(ts=1.0, hot=0.1))
        assert sentinel.check(path, path).ok
        assert not sentinel.check(path, path, inject_slowdown=2.0).ok

    def test_render_mentions_verdict(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        obs.RunLedger(path).append(_rec(hot=0.1))
        text = sentinel.check(path, path, inject_slowdown=3.0).render(top=5)
        assert "REGRESSED" in text
        assert "1 regressed" in text


class TestCli:
    def _ledger(self, tmp_path, name, value):
        path = tmp_path / name
        obs.RunLedger(path).append(_rec(hot=value))
        return path

    def test_check_ok_exit_zero(self, tmp_path, capsys):
        base = self._ledger(tmp_path, "base.jsonl", 0.1)
        assert cli_main(["obs", "check", "--baseline", str(base), str(base)]) == 0
        assert "0 regressed" in capsys.readouterr().out

    def test_check_regression_exit_nonzero(self, tmp_path, capsys):
        base = self._ledger(tmp_path, "base.jsonl", 0.1)
        cur = self._ledger(tmp_path, "cur.jsonl", 0.5)
        code = cli_main(["obs", "check", "--baseline", str(base), str(cur)])
        assert code == 1
        assert "regressed" in capsys.readouterr().err

    def test_check_inject_slowdown(self, tmp_path):
        base = self._ledger(tmp_path, "base.jsonl", 0.1)
        assert (
            cli_main(
                ["obs", "check", "--baseline", str(base), str(base),
                 "--inject-slowdown", "2"]
            )
            == 1
        )

    def test_check_no_comparable_records_fails(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code = cli_main(
            ["obs", "check", "--baseline", str(empty), str(empty)]
        )
        assert code != 0

    def test_diff_prints_table(self, tmp_path, capsys):
        base = self._ledger(tmp_path, "base.jsonl", 0.1)
        cur = self._ledger(tmp_path, "cur.jsonl", 0.12)
        assert cli_main(["obs", "diff", str(base), str(cur), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "hot" in out and "1.20x" in out

    def test_relative_mode_flag(self, tmp_path):
        base = self._ledger(tmp_path, "base.jsonl", 0.1)
        cur = self._ledger(tmp_path, "cur.jsonl", 0.3)
        # single-span groups always have share 1.0: relative mode sees
        # no shift even though absolute mode would gate
        assert (
            cli_main(
                ["obs", "check", "--baseline", str(base), str(cur),
                 "--mode", "relative"]
            )
            == 0
        )
