"""Span call-counts end to end: tracer -> ledger record -> sentinel
deltas -> report table column."""

from repro import obs
from repro.obs import report, sentinel


def _rec(ts=1.0, hot=0.1, calls=None):
    return obs.build_record(
        kind="bench.x",
        run_id=f"r{ts}",
        ts=ts,
        self_times={"hot": float(hot)},
        span_counts=None if calls is None else {"hot": int(calls)},
    )


class TestTracerSpanCounts:
    def test_counts_and_snapshot(self):
        tracer = obs.Tracer()
        for _ in range(3):
            with tracer.span("solve"):
                pass
        with tracer.span("solve"):
            with tracer.span("solve.inner"):
                pass
        counts = tracer.span_counts()
        assert counts["solve"] == 4
        assert counts["solve.inner"] == 1
        assert tracer.snapshot()["span_counts"] == counts

    def test_record_from_tracer_carries_counts(self):
        tracer = obs.Tracer()
        with tracer.span("retime"):
            pass
        record = obs.record_from_tracer(tracer, "k")
        assert record["span_counts"] == {"retime": 1}

    def test_ledger_round_trip(self, tmp_path):
        ledger = obs.RunLedger(tmp_path / "ledger.jsonl")
        ledger.append(
            obs.build_record(
                kind="k",
                run_id="r",
                ts=1.0,
                spans={"a": 1.0},
                span_counts={"a": 7},
            )
        )
        (record,) = ledger.load(strict=True)
        assert record["span_counts"] == {"a": 7}


class TestSentinelCountColumns:
    def test_delta_carries_median_counts(self):
        baseline = [_rec(ts=float(i), hot=0.1, calls=4) for i in range(3)]
        current = [_rec(ts=float(i), hot=0.5, calls=9) for i in range(3)]
        report_ = sentinel.diff(baseline, current)
        (delta,) = report_.regressions
        assert delta.baseline_count == 4
        assert delta.current_count == 9
        assert "[x4->x9]" in delta.describe()

    def test_legacy_records_without_counts(self):
        # pre-span_counts ledger records must not break the sentinel
        baseline = [_rec(hot=0.1)]
        current = [_rec(hot=0.5)]
        (delta,) = sentinel.diff(baseline, current).regressions
        assert delta.baseline_count is None
        assert delta.current_count is None
        assert "[x" not in delta.describe()

    def test_group_medians_values_extractor(self):
        records = [
            _rec(ts=float(i), calls=v) for i, v in enumerate([2, 10, 4])
        ]
        medians = sentinel.group_medians(
            records, values=sentinel._span_counts
        )
        assert medians["bench.x"]["hot"] == 4


class TestReportTopTable:
    def test_top_spans_table_has_count_column(self):
        tracer = obs.Tracer()
        for _ in range(5):
            with tracer.span("relocate"):
                pass
        text = report.render_summary(tracer.events)
        lines = text.splitlines()
        (header_idx,) = [
            i for i, line in enumerate(lines) if "self %" in line
        ]
        header = lines[header_idx]
        assert "count" in header and "total" in header
        (row,) = [
            line for line in lines[header_idx + 1:]
            if line.lstrip().startswith("relocate")
        ]
        assert row.split()[1] == "5"
