"""Shared fixtures: never leak an active tracer between tests."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def no_tracer_leak():
    """Tracing state is process-global; reset it around every test."""
    obs.stop()
    yield
    obs.stop()
