"""The sampling profiler: determinism off, flame data on."""

import json
import threading
import time

from repro import obs
from repro.obs.profile import Profile, SamplingProfiler


def _spin(seconds: float) -> int:
    """A recognisable CPU-bound leaf frame for the sampler to catch."""
    deadline = time.perf_counter() + seconds
    n = 0
    while time.perf_counter() < deadline:
        n += 1
    return n


def _sampler_alive() -> bool:
    return any(t.name == "repro-obs-sampler" for t in threading.enumerate())


STACK = (("outer", "/x/f.py", 1), ("inner", "/x/f.py", 5))


class TestProfileData:
    def test_empty(self):
        p = Profile({}, interval=0.01, duration=0.0, ticks=0)
        assert p.n_samples == 0
        assert p.collapsed() == ""
        scope = p.speedscope()
        assert scope["$schema"].startswith("https://www.speedscope.app")
        assert scope["profiles"][0]["samples"] == []

    def test_aggregations(self):
        p = Profile(
            {(None, STACK): 2, ("my.span", STACK[:1]): 1},
            interval=0.01,
            duration=0.05,
            ticks=3,
        )
        assert p.n_samples == 3
        assert p.by_span() == {"(no span)": 2, "my.span": 1}
        assert p.by_function()["f.inner"] == 2
        assert {"f.outer", "f.inner"} <= p.functions_seen()

    def test_collapsed_span_roots(self):
        p = Profile(
            {("abc", STACK[:1]): 4}, interval=0.01, duration=0.1, ticks=4
        )
        assert p.collapsed(spans=True).splitlines()[0] == "span:abc;f.outer 4"
        assert p.collapsed(spans=False).splitlines()[0] == "f.outer 4"

    def test_speedscope_weights_are_seconds(self):
        p = Profile(
            {(None, STACK[:1]): 3}, interval=0.25, duration=1.0, ticks=3
        )
        scope = p.speedscope()
        prof = scope["profiles"][0]
        assert prof["weights"] == [0.75]
        assert prof["endValue"] == 0.75
        frame = scope["shared"]["frames"][prof["samples"][0][0]]
        assert frame["name"] == "f.outer"

    def test_write_by_extension(self, tmp_path):
        p = Profile(
            {(None, STACK[:1]): 1}, interval=0.01, duration=0.01, ticks=1
        )
        p.write(tmp_path / "flame.collapsed")
        p.write(tmp_path / "flame.json")
        assert "f.outer 1" in (tmp_path / "flame.collapsed").read_text()
        scope = json.loads((tmp_path / "flame.json").read_text())
        assert scope["profiles"][0]["type"] == "sampled"


class TestSampler:
    def test_catches_busy_function(self):
        profiler = SamplingProfiler(interval=0.002).start()
        _spin(0.15)
        profile = profiler.stop()
        assert profile.n_samples > 10
        assert any(
            label.endswith("._spin") for label in profile.functions_seen()
        )

    def test_span_attribution(self):
        profiler = SamplingProfiler(interval=0.002).start()
        obs.start()
        try:
            with obs.span("hot.zone"):
                _spin(0.12)
        finally:
            obs.stop()
        profile = profiler.stop()
        assert profile.by_span().get("hot.zone", 0) > 5

    def test_stop_is_idempotent_and_joins(self):
        profiler = SamplingProfiler(interval=0.005).start()
        _spin(0.02)
        profiler.stop()
        profiler.stop()
        assert not _sampler_alive()


class TestDeterminism:
    def test_disabled_profiler_zero_samples_and_identical_results(self):
        """No profiler => no sampler thread alive, and a profiled run
        retimes to the bit-identical netlist (sampling reads interpreter
        state from outside; it must never perturb the algorithm)."""
        from repro.mcretime import mc_retime
        from repro.netlist import write_blif
        from repro.synth import build_design
        from repro.timing import XC4000E_DELAY

        circuit = build_design("C1", 0.2).circuit
        assert not _sampler_alive()
        plain = mc_retime(circuit, XC4000E_DELAY)

        profiler = SamplingProfiler(interval=0.002).start()
        profiled = mc_retime(circuit, XC4000E_DELAY)
        profile = profiler.stop()

        assert write_blif(plain.circuit) == write_blif(profiled.circuit)
        assert plain.period_after == profiled.period_after
        assert profile.n_samples > 0

    def test_kernel_hot_loops_in_flame_data(self):
        """With REPRO_USE_KERNELS-style execution the retiming engine's
        hot loops dominate the flame data (the profile is useful, not
        just nonempty)."""
        from repro.mcretime import mc_retime
        from repro.synth import build_design
        from repro.timing import XC4000E_DELAY

        circuit = build_design("C3", 0.3).circuit
        profiler = SamplingProfiler(interval=0.001).start()
        mc_retime(circuit, XC4000E_DELAY, use_kernels=True)
        profile = profiler.stop()
        assert profile.n_samples > 0
        seen = profile.functions_seen()
        hot_modules = {"minperiod", "minarea", "delta", "feas", "mcf",
                       "diffsys", "compiled_graph", "sta", "engine",
                       "mcretime"}
        assert any(
            label.split(".")[0] in hot_modules for label in seen
        ), sorted(seen)


class TestSessionIntegration:
    def test_session_profile_written(self, tmp_path):
        out = tmp_path / "profile.json"
        with obs.session(profile=out, profile_interval=0.002):
            _spin(0.08)
        assert not _sampler_alive()
        scope = json.loads(out.read_text())
        names = {f["name"] for f in scope["shared"]["frames"]}
        assert any(name.endswith("._spin") for name in names)

    def test_profile_block_all_threads(self):
        stop = threading.Event()

        def busy():
            while not stop.is_set():
                _spin(0.01)

        worker = threading.Thread(target=busy, daemon=True)
        worker.start()
        try:
            profile = obs.profile_block(0.1, interval=0.005)
        finally:
            stop.set()
            worker.join(timeout=2)
        assert profile.n_samples > 0
        assert not _sampler_alive()
