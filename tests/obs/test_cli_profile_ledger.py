"""``mcretime --profile`` / ``--ledger`` on the retime entry point."""

import json
from pathlib import Path

from repro import obs
from repro.tools.cli import main as cli_main

DATA = Path(__file__).resolve().parent.parent / "data"


def _retime(tmp_path, *extra):
    src = DATA / "c2_small.blif"
    out = tmp_path / "out.blif"
    code = cli_main([str(src), "-o", str(out), *extra])
    assert code == 0
    return out


class TestProfileFlag:
    def test_writes_speedscope(self, tmp_path):
        profile = tmp_path / "flame.json"
        _retime(tmp_path, "--profile", str(profile))
        scope = json.loads(profile.read_text())
        assert scope["profiles"][0]["type"] == "sampled"

    def test_collapsed_extension(self, tmp_path):
        profile = tmp_path / "flame.collapsed"
        _retime(tmp_path, "--profile", str(profile), "--profile-interval",
                "0.001")
        assert profile.exists()


class TestLedgerFlag:
    def test_appends_cli_record(self, tmp_path):
        ledger = tmp_path / "runs.jsonl"
        out = _retime(tmp_path, "--ledger", str(ledger))
        assert out.exists()
        (record,) = obs.RunLedger(ledger).load()
        assert record["kind"] == "cli.retime"
        assert record["fingerprint"] and len(record["fingerprint"]) == 64
        assert record["spans"], "engine spans missing"
        assert record["config"]["objective"] in ("minarea", "minperiod")
        metrics = record["metrics"]
        assert metrics["period_after"] <= metrics["period_before"]
        assert "ff_after" in metrics and "n_classes" in metrics

    def test_env_var_equivalent(self, tmp_path, monkeypatch):
        ledger = tmp_path / "env_runs.jsonl"
        monkeypatch.setenv("REPRO_LEDGER", str(ledger))
        _retime(tmp_path)
        (record,) = obs.RunLedger(ledger).load()
        assert record["kind"] == "cli.retime"

    def test_two_runs_same_fingerprint(self, tmp_path):
        ledger = tmp_path / "runs.jsonl"
        _retime(tmp_path, "--ledger", str(ledger))
        _retime(tmp_path, "--ledger", str(ledger))
        a, b = obs.RunLedger(ledger).load()
        assert a["fingerprint"] == b["fingerprint"]
        assert a["run_id"] != b["run_id"]
