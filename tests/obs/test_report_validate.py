"""``mcretime report --validate`` gating and the --top self-time table."""

import json

from repro import obs
from repro.obs.report import chrome_trace_errors, jsonl_errors
from repro.tools.cli import main as cli_main


def _traced_run(tmp_path):
    trace = tmp_path / "trace.json"
    jsonl = tmp_path / "run.jsonl"
    with obs.session(trace=trace, jsonl=jsonl):
        with obs.span("phase.outer"):
            with obs.span("phase.inner"):
                pass
        obs.count("things", 2)
    return trace, jsonl


class TestErrorCollectors:
    def test_valid_files_have_no_errors(self, tmp_path):
        trace, jsonl = _traced_run(tmp_path)
        assert chrome_trace_errors(trace) == []
        assert jsonl_errors(jsonl) == []

    def test_jsonl_collects_every_violation(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            "{not json\n"
            + json.dumps({"type": "span", "name": "x"})  # missing fields
            + "\n"
            + json.dumps({"type": "mystery"})
            + "\n"
        )
        errors = jsonl_errors(path)
        assert len(errors) >= 3

    def test_chrome_collects_every_violation(self, tmp_path):
        path = tmp_path / "bad_trace.json"
        path.write_text(
            json.dumps(
                {
                    "traceEvents": [
                        {"ph": "X", "name": "a", "pid": 1},  # no ts
                        {"name": "b"},  # no ph
                        {"ph": "X", "name": "c", "pid": 1, "ts": 0, "dur": -5},
                    ]
                }
            )
        )
        errors = chrome_trace_errors(path)
        assert len(errors) >= 3

    def test_validators_still_raise_first_error(self, tmp_path):
        import pytest

        path = tmp_path / "bad.jsonl"
        path.write_text("{torn\n")
        with pytest.raises(ValueError):
            obs.validate_jsonl(path)


class TestValidateCli:
    def test_valid_exits_zero(self, tmp_path, capsys):
        trace, jsonl = _traced_run(tmp_path)
        assert cli_main(["report", str(jsonl), "--validate"]) == 0
        assert cli_main(["report", str(trace), "--validate"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_invalid_jsonl_exits_nonzero_listing_all(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n{also not json\n")
        assert cli_main(["report", str(path), "--validate"]) == 1
        err = capsys.readouterr().err
        assert err.count("mcretime: error:") >= 2
        assert "INVALID" in err

    def test_invalid_chrome_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text('{"traceEvents": [{"name": "x"}]}')
        assert cli_main(["report", str(path), "--validate"]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestTopTable:
    def test_top_table_rendered(self, tmp_path, capsys):
        _, jsonl = _traced_run(tmp_path)
        assert cli_main(["report", str(jsonl), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "top 3 spans by self-time:" in out
        assert "self %" in out
        assert "phase.inner" in out

    def test_top_zero_hides_table(self, tmp_path, capsys):
        _, jsonl = _traced_run(tmp_path)
        assert cli_main(["report", str(jsonl), "--top", "0"]) == 0
        assert "spans by self-time" not in capsys.readouterr().out
