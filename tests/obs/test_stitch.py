"""Unit tests for the cross-process trace stitcher (repro.obs.stitch).

The skew regression here is the satellite fix: per-process
``perf_counter`` offsets are not comparable across pids, so the stitcher
must rebase every event onto the common ``wall0`` anchor and clamp so
nothing renders with a negative start or duration.
"""

import json
from pathlib import Path

import pytest

from repro import obs
from repro.obs import stitch


def _span(name, sid, parent, ts, dur, pid, depth=0, **args):
    out = {
        "type": "span",
        "name": name,
        "id": sid,
        "parent": parent,
        "depth": depth,
        "ts": ts,
        "dur": dur,
        "self": dur,
        "pid": pid,
        "tid": 0,
    }
    if args:
        out["args"] = args
    return out


def _frontend_trace(pid=100, wall0=1000.0, total=1.0):
    """Synthetic front-end request log: admit/queue/dispatch under request."""
    return [
        {
            "type": "meta",
            "trace_id": "job-a",
            "pid": pid,
            "wall_time": wall0,
            "role": "frontend",
            "job": "job-a",
        },
        _span("request.admit", 2, 1, 0.0, 0.01, pid, depth=1),
        _span("request.queue", 3, 1, 0.01, 0.09, pid, depth=1),
        _span("request.dispatch", 4, 1, 0.1, total - 0.1, pid, depth=1),
        _span("request", 1, 0, 0.0, total, pid, job="job-a"),
        {
            "type": "end",
            "trace_id": "job-a",
            "ts": total,
            "counters": {"frontend.requests": 1},
            "gauges": {},
            "spans": {"request": total},
            "pid": pid,
        },
    ]


def _worker_trace(pid=200, wall0=1000.5, parent_span=4, parent_pid=100):
    """Synthetic worker trace: resolve/execute/respond roots."""
    meta = {
        "type": "meta",
        "trace_id": "job-a",
        "pid": pid,
        "wall_time": wall0,
        "role": "worker",
        "job": "job-a",
    }
    if parent_span is not None:
        meta["parent_span"] = parent_span
        meta["parent_pid"] = parent_pid
    return [
        meta,
        _span("worker.resolve", 1, 0, 0.0, 0.02, pid),
        _span("job.execute", 2, 0, 0.02, 0.3, pid),
        _span("worker.respond", 3, 0, 0.32, 0.01, pid),
        {
            "type": "end",
            "trace_id": "job-a",
            "ts": 0.33,
            "counters": {"worker.jobs": 1},
            "gauges": {},
            "spans": {"job.execute": 0.3},
            "pid": pid,
        },
    ]


class TestWallClockRebase:
    def test_worker_events_shift_by_wall_clock_delta(self):
        events = stitch.stitch_events([_frontend_trace(), _worker_trace()])
        execute = [
            e for e in events
            if e.get("type") == "span" and e["name"] == "job.execute"
        ][0]
        # worker wall0 is 0.5s after the front-end's: its local ts 0.02
        # lands at 0.52 on the stitched axis
        assert execute["ts"] == pytest.approx(0.52)

    def test_earliest_wall_clock_is_the_origin(self):
        events = stitch.stitch_events([_worker_trace(), _frontend_trace()])
        head = events[0]
        assert head["type"] == "meta"
        assert head.get("stitched") is True
        assert head["wall_time"] == pytest.approx(1000.0)

    def test_skew_never_produces_negative_start_or_duration(self):
        """The regression: NTP slew / float rounding pushing a rebased
        timestamp fractionally below zero must be clamped, not exported."""
        worker = _worker_trace(wall0=999.999_999)  # "before" the front-end
        worker[1]["ts"] = -1e-4  # skewed local timestamp
        worker[2]["dur"] = -1e-6  # degenerate duration
        events = stitch.stitch_events([_frontend_trace(), worker])
        for event in events:
            if event.get("type") == "span":
                assert event["ts"] >= 0.0, event
                assert event["dur"] >= 0.0, event

    def test_body_events_are_time_ordered(self):
        events = stitch.stitch_events([_worker_trace(), _frontend_trace()])
        body = [e for e in events if e.get("type") == "span"]
        assert [e["ts"] for e in body] == sorted(e["ts"] for e in body)


class TestCrossProcessStructure:
    def test_span_ids_are_globally_unique(self):
        events = stitch.stitch_events([_frontend_trace(), _worker_trace()])
        ids = [e["id"] for e in events if e.get("type") == "span"]
        assert len(ids) == len(set(ids))

    def test_worker_roots_reparent_under_the_dispatch_span(self):
        events = stitch.stitch_events([_frontend_trace(), _worker_trace()])
        spans = {
            (e["pid"], e["name"]): e
            for e in events
            if e.get("type") == "span"
        }
        dispatch = spans[(100, "request.dispatch")]
        for name in ("worker.resolve", "job.execute", "worker.respond"):
            worker_span = spans[(200, name)]
            assert worker_span["parent"] == dispatch["id"]
            assert worker_span.get("stitched_parent") is True

    def test_unstamped_worker_trace_keeps_its_roots(self):
        worker = _worker_trace(parent_span=None)
        events = stitch.stitch_events([_frontend_trace(), worker])
        roots = [
            e
            for e in events
            if e.get("type") == "span"
            and e["pid"] == 200
            and e["parent"] == 0
        ]
        assert len(roots) == 3

    def test_parent_self_time_shrinks_after_adoption(self):
        events = stitch.stitch_events([_frontend_trace(), _worker_trace()])
        dispatch = [
            e for e in events
            if e.get("type") == "span" and e["name"] == "request.dispatch"
        ][0]
        # 0.9s dispatch window minus the three adopted worker spans
        assert dispatch["self"] < dispatch["dur"]

    def test_merged_end_record_sums_counters(self):
        events = stitch.stitch_events([_frontend_trace(), _worker_trace()])
        tail = events[-1]
        assert tail["type"] == "end"
        assert tail["counters"] == {
            "frontend.requests": 1,
            "worker.jobs": 1,
        }


class TestRequestTimelines:
    def test_coverage_accounts_direct_children(self):
        events = stitch.stitch_events([_frontend_trace(), _worker_trace()])
        (line,) = stitch.request_timelines(events)
        assert line["job"] == "job-a"
        # admit (0.01) + queue (0.09) + dispatch (0.9) cover the request
        assert line["coverage"] == pytest.approx(1.0, abs=0.02)
        assert line["children"] == 3

    def test_uncovered_window_lowers_coverage(self):
        trace = _frontend_trace()
        # drop the dispatch span: 0.9s of the request goes unaccounted
        trace = [
            e for e in trace
            if not (e.get("type") == "span" and e["name"] == "request.dispatch")
        ]
        (line,) = stitch.request_timelines(stitch.stitch_events([trace]))
        assert line["coverage"] == pytest.approx(0.1, abs=0.02)


class TestCriticalPath:
    def test_per_phase_attribution(self):
        stitched = {
            "job-a": stitch.stitch_events(
                [_frontend_trace(), _worker_trace()]
            )
        }
        analysis = stitch.critical_path(stitched)
        (row,) = analysis["requests"]
        assert row["queue"] == pytest.approx(0.09)
        assert row["intern"] == pytest.approx(0.02)  # worker.resolve
        assert row["solve"] == pytest.approx(0.3)  # job.execute
        assert row["respond"] == pytest.approx(1.0 - 0.09 - 0.02 - 0.3)
        assert analysis["sum"]["total"] == pytest.approx(1.0)

    def test_nested_intern_spans_count_once(self):
        worker = _worker_trace()
        worker.insert(
            2,
            _span(
                "service.intern.attach", 4, 1, 0.001, 0.015, 200, depth=1
            ),
        )
        stitched = {"job-a": stitch.stitch_events([_frontend_trace(), worker])}
        (row,) = stitch.critical_path(stitched)["requests"]
        # attach nests inside worker.resolve: only the outer counts
        assert row["intern"] == pytest.approx(0.02)

    def test_render_mentions_every_phase(self):
        stitched = {
            "job-a": stitch.stitch_events([_frontend_trace(), _worker_trace()])
        }
        text = stitch.render_critical_path(stitch.critical_path(stitched))
        for word in ("queue", "intern", "solve", "respond", "SUM"):
            assert word in text


class TestValidatorsAcceptStitched:
    def test_stitched_jsonl_passes_schema_validation(self, tmp_path):
        """Satellite: the validator accepts multi-process event streams."""
        events = stitch.stitch_events([_frontend_trace(), _worker_trace()])
        pids = {e["pid"] for e in events if e.get("type") == "span"}
        assert len(pids) == 2
        out = tmp_path / "stitched.jsonl"
        stitch.write_jsonl(events, out)
        assert obs.jsonl_errors(out) == []

    def test_stitched_chrome_export_passes_validation(self, tmp_path):
        stitched = {
            "job-a": stitch.stitch_events([_frontend_trace(), _worker_trace()])
        }
        out = tmp_path / "stitched.json"
        stitch.write_chrome(stitched, out)
        assert obs.chrome_trace_errors(out) == []
        doc = json.loads(out.read_text())
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("ph") == "M"
        }
        assert any("frontend" in n for n in names)
        assert any("worker" in n for n in names)

    def test_validator_flags_negative_span_start(self, tmp_path):
        events = stitch.stitch_events([_frontend_trace()])
        for event in events:
            if event.get("type") == "span" and event["name"] == "request":
                event["ts"] = -0.25  # simulate a missing skew correction
        out = tmp_path / "bad.jsonl"
        stitch.write_jsonl(events, out)
        errors = obs.jsonl_errors(out)
        assert any("negative span start" in e for e in errors)


class TestTraceGroups:
    def test_request_and_worker_files_group_together(self, tmp_path):
        (tmp_path / "abc123.jsonl").write_text("")
        (tmp_path / "abc123.req.jsonl").write_text("")
        (tmp_path / "other9.jsonl").write_text("")
        groups = stitch.trace_groups(tmp_path)
        assert sorted(groups) == ["abc123", "other9"]
        assert len(groups["abc123"]) == 2
        assert len(groups["other9"]) == 1

    def test_stitch_dir_filters_by_job(self, tmp_path):
        front = tmp_path / "job-a.req.jsonl"
        with front.open("w") as fh:
            for event in _frontend_trace():
                fh.write(json.dumps(event) + "\n")
        worker = tmp_path / "job-a.jsonl"
        with worker.open("w") as fh:
            for event in _worker_trace():
                fh.write(json.dumps(event) + "\n")
        assert list(stitch.stitch_dir(tmp_path, job="job-a")) == ["job-a"]
        assert stitch.stitch_dir(tmp_path, job="nope") == {}

    def test_partial_trailing_line_is_tolerated(self, tmp_path):
        path = tmp_path / "job-a.jsonl"
        lines = [json.dumps(e) for e in _worker_trace(parent_span=None)]
        path.write_text("\n".join(lines) + '\n{"type": "sp')  # mid-write
        events = stitch.stitch_events([path])
        assert events  # the partial line is dropped, not fatal
