"""Certificate-backed explanations (docs/EXPLAIN.md).

Covers the extraction API (``mc_retime(explain=True)``), independent
re-validation (including tamper detection), the infeasibility
certificate, the ``mcretime explain`` CLI, and the ISSUE's differential
contract: explanations validate identically under the compiled kernels
and the dict reference engines, and the per-gate bound attribution
agrees with an independently recomputed dict-oracle bounds pass.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings

from repro import kernels
from repro.graph.build import build_mcgraph
from repro.mcretime import mc_retime
from repro.mcretime.bounds import compute_bounds
from repro.mcretime.classes import Classifier
from repro.mcretime.relocate import RelocationError
from repro.mcretime.sharing import apply_sharing_transform
from repro.netlist import read_blif
from repro.obs.explain import (
    SCHEMA,
    infeasible_payload,
    render_explanation,
    summary_metrics,
    validate_explanation,
)
from repro.retime.constraints import InfeasibleConstraints
from repro.timing import UNIT_DELAY
from repro.tools.cli import main as cli_main
from tests.strategies import circuits

DATA = Path(__file__).resolve().parent.parent / "data"


def small_circuit():
    return read_blif(
        (DATA / "c2_small_mapped.blif").read_text(),
        name_hint="c2_small_mapped",
    )


def work_graph_oracle(circuit, delay_model=UNIT_DELAY):
    """Replay the engine's deterministic build pipeline with dict code.

    Gives the post-sharing work graph and the *un-clamped* mc-bounds —
    the independent oracle the explanation's attribution must agree
    with (engine clamps may only tighten, and must say so).
    """
    classifier = Classifier(circuit, semantic=True)
    build = build_mcgraph(circuit, delay_model, classifier.classify)
    bounds = compute_bounds(build.graph)
    transform = apply_sharing_transform(
        build.graph, bounds.bounds, bounds.backward_graph
    )
    return transform.graph, dict(transform.bounds)


# --------------------------------------------------------------------- #
# extraction API


def test_engine_explain_valid():
    result = mc_retime(small_circuit(), explain=True)
    ex = result.explanation
    assert ex is not None
    assert ex["schema"] == SCHEMA
    assert ex["valid"] is True
    assert ex["errors"] == []
    assert ex["certificates"] > 0
    assert ex["period"] == result.period_after
    assert "explain" in result.timings
    # the minimised default run proves minimality with a lower bound
    assert ex["minimal"] is True
    assert ex["why_period"]["witness"]["path"]
    summary = summary_metrics(ex)
    assert summary["certificates"] == ex["certificates"]
    assert summary["valid"] is True
    assert summary["witness_gates"] == len(ex["why_period"]["witness"]["path"])
    text = render_explanation(ex)
    assert "why-period" in text
    assert "all valid" in text


def test_explain_off_pays_nothing():
    result = mc_retime(small_circuit())
    assert result.explanation is None
    assert "explain" not in result.timings


def test_witness_revalidates_against_independent_graph():
    circuit = small_circuit()
    result = mc_retime(circuit, explain=True)
    ex = result.explanation
    graph, _bounds = work_graph_oracle(circuit)
    assert validate_explanation(graph, ex) == []
    # the witness is a genuine register-free chain: re-sum its delays
    witness = ex["why_period"]["witness"]
    total = 0.0
    for v in witness["path"]:
        total += graph.vertices[v].delay
    assert total == witness["sum"] == ex["period"]


@pytest.mark.parametrize(
    "mutate",
    [
        lambda ex: ex["why_period"]["witness"].__setitem__(
            "sum", ex["why_period"]["witness"]["sum"] + 1
        ),
        lambda ex: ex["why_period"]["witness"]["path"].append("no_such_gate"),
        lambda ex: ex.__setitem__("period", ex["period"] + 1),
    ],
    ids=["witness-sum", "witness-path", "period"],
)
def test_tampered_certificates_fail_validation(mutate):
    circuit = small_circuit()
    ex = mc_retime(circuit, explain=True).explanation
    graph, _bounds = work_graph_oracle(circuit)
    tampered = copy.deepcopy(ex)
    mutate(tampered)
    assert validate_explanation(graph, tampered) != []


# --------------------------------------------------------------------- #
# infeasibility certificate


@pytest.mark.parametrize("use", [True, False], ids=["kernels", "dict"])
def test_infeasible_certificate_both_engines(use):
    with kernels.use_kernels(use):
        with pytest.raises(InfeasibleConstraints) as err:
            mc_retime(small_circuit(), target_period=0.25)
    payload = infeasible_payload(err.value)
    assert payload["schema"] == SCHEMA
    assert payload["kind"] == "infeasible"
    assert payload["valid"] is True
    cert = payload["certificate"]
    assert cert["kind"] == "negative_cycle"
    assert cert["sum"] < 0
    cons = cert["constraints"]
    assert cons
    # the constraints chain head-to-tail into a cycle
    for a, b in zip(cons, cons[1:] + cons[:1]):
        assert a["v"] == b["u"]
    assert sum(c["bound"] for c in cons) == cert["sum"]
    assert "constraint cycle" in err.value.summary()


# --------------------------------------------------------------------- #
# kernel/dict differential (the ISSUE's oracle contract)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(circuit=circuits(max_gates=10, max_registers=4))
def test_explanations_agree_across_kernels(circuit):
    # engines must fail identically on known engine limits (see
    # tests/kernels/test_differential.py) — not an explain divergence
    try:
        fast = mc_retime(circuit, use_kernels=True, explain=True)
    except RelocationError:
        with pytest.raises(RelocationError):
            mc_retime(circuit, use_kernels=False, explain=True)
        return
    slow = mc_retime(circuit, use_kernels=False, explain=True)
    fe, se = fast.explanation, slow.explanation
    assert fe["valid"] is True
    assert se["valid"] is True
    assert fe["period"] == se["period"]
    assert fe["r"] == se["r"]
    assert fe["bounds"] == se["bounds"]
    assert set(fe["why_stuck"]) == set(se["why_stuck"])
    assert fe["minimal_proven"] == se["minimal_proven"]
    assert fe["certificates"] == se["certificates"]

    # bound attribution vs the independently recomputed dict oracle:
    # engine bounds may only tighten the mc-bounds, and any tightening
    # must be attributed (conflict_clamp), never silent
    _graph, oracle = work_graph_oracle(circuit)
    for v, entry in fe["why_stuck"].items():
        if v not in oracle:
            continue
        lo, hi = oracle[v]
        assert entry["r_min"] >= lo
        assert entry["r_max"] <= hi
        reasons = {reason["reason"] for reason in entry["reasons"]}
        if (entry["r_min"], entry["r_max"]) != (lo, hi):
            assert "conflict_clamp" in reasons


# --------------------------------------------------------------------- #
# CLI


def test_cli_explain_tree(capsys):
    code = cli_main(["explain", str(DATA / "c2_small_mapped.blif")])
    out = capsys.readouterr().out
    assert code == 0
    assert "why-period" in out
    assert "certificates:" in out
    assert "all valid" in out


def test_cli_explain_json_out(tmp_path, capsys):
    out_file = tmp_path / "explain.json"
    code = cli_main(
        [
            "explain",
            str(DATA / "c2_small_mapped.blif"),
            "--json",
            "--out",
            str(out_file),
        ]
    )
    assert code == 0
    printed = json.loads(capsys.readouterr().out)
    written = json.loads(out_file.read_text())
    assert printed == written
    assert written["schema"] == SCHEMA
    assert written["valid"] is True
    assert written["certificates"] > 0


def test_cli_explain_why_stuck(capsys):
    circuit = small_circuit()
    ex = mc_retime(circuit, explain=True).explanation
    gate = sorted(ex["why_stuck"])[0]
    code = cli_main(
        ["explain", str(DATA / "c2_small_mapped.blif"), "--why-stuck", gate]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert gate in out


def test_cli_why_infeasible_exit_codes(tmp_path, capsys):
    src = str(DATA / "c2_small_mapped.blif")
    out_file = tmp_path / "infeasible.json"
    code = cli_main(
        [
            "explain",
            src,
            "--target-period",
            "0.25",
            "--why-infeasible",
            "--json",
            "--out",
            str(out_file),
        ]
    )
    assert code == 0
    payload = json.loads(out_file.read_text())
    assert payload["kind"] == "infeasible"
    assert payload["valid"] is True
    capsys.readouterr()

    # infeasible without --why-infeasible is an error...
    assert cli_main(["explain", src, "--target-period", "0.25"]) == 1
    capsys.readouterr()
    # ...and --why-infeasible on a feasible target is one too
    assert cli_main(["explain", src, "--why-infeasible"]) != 0
