"""Unit tests for the SLO engine (repro.obs.slo).

The acceptance-critical case lives here too: an injected latency
degradation must flip :func:`evaluate` (and the ledger replay in
:func:`check_records`) from passing to failing.
"""

import json

import pytest

from repro.obs import slo


def make_engine(config=None, start=1000.0):
    """Engine on a fake, advanceable clock."""
    state = {"now": start}
    engine = slo.SLOEngine(
        config=config or slo.SLOConfig(), clock=lambda: state["now"]
    )
    return engine, state


class TestSLOConfig:
    def test_defaults(self):
        config = slo.SLOConfig()
        assert config.window_seconds == 300.0
        assert config.latency_p95_seconds == 2.0
        assert config.error_rate == 0.02
        assert config.shed_rate == 0.10

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown SLO config key"):
            slo.SLOConfig.from_dict({"latency_p99_seconds": 1.0})

    def test_load_round_trips(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(
            json.dumps({"window_seconds": 60, "latency_p95_seconds": 0.5})
        )
        config = slo.SLOConfig.load(path)
        assert config.window_seconds == 60
        assert config.latency_p95_seconds == 0.5
        assert config.error_rate == 0.02  # untouched default
        assert slo.SLOConfig.from_dict(config.to_dict()) == config

    def test_none_disables_an_objective(self):
        engine, _ = make_engine(slo.SLOConfig(latency_p95_seconds=None))
        engine.observe(100.0)
        status = engine.status()
        assert "latency_p95_seconds" not in {
            s["name"] for s in status["slos"]
        }
        assert status["ok"]


class TestSLOEngine:
    def test_all_green_when_within_targets(self):
        engine, _ = make_engine()
        for _ in range(20):
            engine.observe(0.1)
        status = engine.status()
        assert status["ok"]
        assert status["observed"]["completed"] == 20
        assert all(s["burn_rate"] <= 1.0 for s in status["slos"])

    def test_latency_burn_flips_the_objective(self):
        engine, _ = make_engine(slo.SLOConfig(latency_p95_seconds=0.2))
        for _ in range(20):
            engine.observe(0.5)
        status = engine.status()
        latency = next(
            s for s in status["slos"] if s["name"] == "latency_p95_seconds"
        )
        assert not latency["ok"]
        assert latency["burn_rate"] == pytest.approx(2.5)
        assert not status["ok"]

    def test_error_rate_counts_failed_outcomes(self):
        engine, _ = make_engine()
        for i in range(10):
            engine.observe(0.1, ok=i != 0)  # 1 failure in 10
        status = engine.status()
        assert status["observed"]["error_rate"] == pytest.approx(0.1)
        error = next(s for s in status["slos"] if s["name"] == "error_rate")
        assert not error["ok"]  # 0.1 > the 0.02 target

    def test_shed_rate_over_all_arrivals(self):
        engine, _ = make_engine()
        for _ in range(8):
            engine.observe(0.1)
        for _ in range(2):
            engine.observe_shed()
        status = engine.status()
        assert status["observed"]["shed_rate"] == pytest.approx(0.2)
        assert status["observed"]["requests"] == 10

    def test_window_pruning_forgets_old_samples(self):
        engine, state = make_engine(slo.SLOConfig(window_seconds=60.0))
        engine.observe(5.0, ok=False)  # terrible sample at t=1000
        state["now"] += 120.0  # two windows later
        engine.observe(0.1)
        status = engine.status()
        assert status["observed"]["requests"] == 1
        assert status["observed"]["error_rate"] == 0.0
        assert status["ok"]

    def test_throughput_is_per_window_second(self):
        engine, _ = make_engine(slo.SLOConfig(window_seconds=100.0))
        for _ in range(25):
            engine.observe(0.1)
        status = engine.status()
        assert status["observed"]["throughput_per_second"] == pytest.approx(
            0.25
        )

    def test_empty_engine_reports_clean(self):
        engine, _ = make_engine()
        status = engine.status()
        assert status["ok"]
        assert status["observed"]["requests"] == 0


class TestEvaluate:
    def test_passing_status(self):
        engine, _ = make_engine()
        engine.observe(0.1)
        ok, messages = slo.evaluate(engine.status())
        assert ok
        assert all(m.startswith("PASS") for m in messages)

    def test_injected_latency_flips_the_check(self):
        """Acceptance: degradation injection turns a green check red."""
        engine, _ = make_engine(slo.SLOConfig(latency_p95_seconds=2.0))
        for _ in range(10):
            engine.observe(0.05)
        status = engine.status()
        ok, _ = slo.evaluate(status)
        assert ok
        ok, messages = slo.evaluate(status, inject_latency=1000.0)
        assert not ok
        assert any(
            m.startswith("FAIL latency_p95_seconds") for m in messages
        )
        # other objectives are untouched by the injection
        assert sum(m.startswith("FAIL") for m in messages) == 1

    def test_no_objectives_passes_explicitly(self):
        ok, messages = slo.evaluate({"slos": []})
        assert ok
        assert "no objectives configured" in messages[0]


class TestReevaluate:
    def test_stricter_committed_config_overrides_server_targets(self):
        engine, _ = make_engine(slo.SLOConfig(latency_p95_seconds=10.0))
        for _ in range(10):
            engine.observe(0.5)
        status = engine.status()
        assert status["ok"]  # lenient server-side target
        rejudged = slo.reevaluate(
            status, slo.SLOConfig(latency_p95_seconds=0.1)
        )
        assert not rejudged["ok"]
        assert rejudged["config"]["latency_p95_seconds"] == 0.1


class TestCheckRecords:
    @staticmethod
    def record(elapsed, status="done"):
        return {
            "kind": "service.job",
            "status": status,
            "metrics": {"elapsed": elapsed},
        }

    def test_replays_a_healthy_ledger(self):
        records = [self.record(0.1) for _ in range(10)]
        ok, messages, status = slo.check_records(records, slo.SLOConfig())
        assert ok
        assert status["observed"]["completed"] == 10

    def test_failed_and_shed_records_count_against_budgets(self):
        records = [self.record(0.1) for _ in range(4)]
        records.append(self.record(0.1, status="failed"))
        records.append(self.record(0.0, status="shed"))
        config = slo.SLOConfig(error_rate=0.01, shed_rate=0.01)
        ok, messages, status = slo.check_records(records, config)
        assert not ok
        assert status["observed"]["error_rate"] == pytest.approx(0.2)
        assert status["observed"]["shed_rate"] == pytest.approx(1 / 6)

    def test_injection_flips_the_offline_gate(self):
        records = [self.record(0.05) for _ in range(10)]
        config = slo.SLOConfig(latency_p95_seconds=2.0)
        ok, _, _ = slo.check_records(records, config)
        assert ok
        ok, messages, _ = slo.check_records(
            records, config, inject_latency=1000.0
        )
        assert not ok

    def test_empty_ledger_fails_loudly(self):
        ok, messages, _ = slo.check_records(
            [{"kind": "bench.case"}], slo.SLOConfig()
        )
        assert not ok
        assert any("no service.job records" in m for m in messages)


class TestRenderStatus:
    def test_mentions_every_objective_and_verdict(self):
        engine, _ = make_engine(slo.SLOConfig(latency_p95_seconds=0.01))
        for _ in range(5):
            engine.observe(0.5)
        text = slo.render_status(engine.status())
        assert "latency_p95_seconds" in text
        assert "BURN" in text
        assert "VIOLATED" in text
