"""Hypothesis differential suite: ECO results must be bit-identical.

Random base circuits take random cumulative edit sequences; after every
step the incremental result is compared byte-for-byte (written netlist)
and metric-for-metric against a cold :func:`mc_retime` of the edited
circuit.  Warm, reuse, and every fallback path flow through the same
assertion — the plan chosen is an implementation detail, the output
contract is not.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.eco import (
    EcoState,
    apply_edit_script,
    deterministic_metrics,
    diff_circuits,
    eco_retime,
)
from repro.mcretime import mc_retime
from repro.netlist import Circuit, GateFn, write_blif
from repro.timing import UNIT_DELAY, XC4000E_DELAY
from tests.strategies import circuits

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

# retype targets by arity; LUT handled separately (needs a table)
_FNS_1 = [GateFn.AND, GateFn.OR, GateFn.NAND, GateFn.NOR, GateFn.XOR,
          GateFn.XNOR, GateFn.BUF, GateFn.NOT]
_FNS_2 = [GateFn.AND, GateFn.OR, GateFn.NAND, GateFn.NOR, GateFn.XOR,
          GateFn.XNOR]
_FNS_3 = _FNS_2 + [GateFn.MUX, GateFn.CARRY]


def _read_nets(circuit: Circuit) -> set[str]:
    """Nets read by some cell (primary outputs are not 'reads' here —
    remove_gate prunes the output list itself)."""
    read: set[str] = set()
    for gate in circuit.gates.values():
        read.update(gate.inputs)
    for reg in circuit.registers.values():
        read.add(reg.d)
        for pin in (reg.clk, reg.en, reg.sr, reg.ar):
            if pin is not None:
                read.add(pin)
    return read


def _driven_nets(circuit: Circuit) -> list[str]:
    driven = [n for n in circuit.inputs if n != "clk"]
    driven += [g.output for g in circuit.gates.values()]
    driven += [r.q for r in circuit.registers.values()]
    return driven


@st.composite
def edit_ops(draw, current: Circuit, tag: int) -> dict:
    """One valid edit op against *current* (applied cumulatively)."""
    kinds = ["retype_gate", "retype_gate", "retype_gate", "add_gate"]
    if current.registers:
        kinds += ["set_reset", "set_reset", "set_control"]
    reads = _read_nets(current)
    removable = [
        g.name
        for g in current.gates.values()
        if g.output not in reads
        # never strip the last primary output
        and not (g.output in current.outputs and len(current.outputs) == 1)
    ]
    if removable and len(current.gates) > 1:
        kinds.append("remove_gate")
    kind = draw(st.sampled_from(kinds))

    if kind == "retype_gate":
        gate = current.gates[draw(st.sampled_from(list(current.gates)))]
        arity = len(gate.inputs)
        pool = {1: _FNS_1, 2: _FNS_2, 3: _FNS_3}.get(arity, [GateFn.LUT])
        fn = draw(st.sampled_from(list(pool) + [GateFn.LUT]))
        op = {"op": "retype_gate", "name": gate.name, "fn": fn.value}
        if fn is GateFn.LUT:
            op["table"] = draw(
                st.integers(min_value=0, max_value=(1 << (1 << arity)) - 1)
            )
        return op
    if kind == "set_reset":
        name = draw(st.sampled_from(list(current.registers)))
        return {
            "op": "set_reset",
            "name": name,
            "sval": draw(st.sampled_from([0, 1, 2])),
            "aval": draw(st.sampled_from([0, 1, 2])),
        }
    if kind == "set_control":
        name = draw(st.sampled_from(list(current.registers)))
        pool = [n for n in current.inputs if n != "clk"]
        return {
            "op": "set_control",
            "name": name,
            draw(st.sampled_from(["en", "sr", "ar"])): draw(
                st.sampled_from(pool + [None])
            ),
        }
    if kind == "remove_gate":
        return {"op": "remove_gate", "name": draw(st.sampled_from(removable))}
    # add_gate: fresh name/net, inputs from already-driven nets
    driven = _driven_nets(current)
    arity = draw(st.integers(min_value=1, max_value=min(3, len(driven))))
    fn = draw(st.sampled_from({1: _FNS_1, 2: _FNS_2, 3: _FNS_3}[arity]))
    ins = [draw(st.sampled_from(driven)) for _ in range(arity)]
    return {
        "op": "add_gate",
        "name": f"ecox{tag}",
        "fn": fn.value,
        "inputs": ins,
        "output": f"ecox{tag}_o",
        "as_output": draw(st.booleans()),
    }


@st.composite
def base_and_edits(draw, max_steps: int = 4):
    base = draw(circuits(max_inputs=4, max_gates=10, max_registers=4))
    ops: list[dict] = []
    current = base
    n_steps = draw(st.integers(min_value=1, max_value=max_steps))
    for k in range(n_steps):
        op = draw(edit_ops(current, tag=k))
        ops.append(op)
        current = apply_edit_script(base, ops)
    return base, ops


def _assert_step_identical(state, base, ops, model, **kwargs):
    """Run one cumulative step warm and cold; both must agree exactly —
    including on failure (same exception type)."""
    edited = apply_edit_script(base, ops)
    try:
        cold = mc_retime(edited, delay_model=model)
    except Exception as exc:  # noqa: BLE001 — mirror whatever cold does
        with pytest.raises(type(exc)):
            eco_retime(state, ops, **kwargs)
        return False
    eco = eco_retime(state, ops, **kwargs)
    assert write_blif(eco.result.circuit) == write_blif(cold.circuit)
    assert deterministic_metrics(eco.result) == deterministic_metrics(cold)
    return True


@RELAXED
@given(data=base_and_edits())
def test_eco_matches_cold_unit_delay(data):
    base, ops = data
    state = EcoState(base, delay_model=UNIT_DELAY)
    for step in range(1, len(ops) + 1):
        if not _assert_step_identical(state, base, ops[:step], UNIT_DELAY):
            return


@RELAXED
@given(data=base_and_edits())
def test_eco_matches_cold_xc4000e(data):
    base, ops = data
    state = EcoState(base, delay_model=XC4000E_DELAY)
    for step in range(1, len(ops) + 1):
        if not _assert_step_identical(state, base, ops[:step], XC4000E_DELAY):
            return


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=base_and_edits(max_steps=2))
def test_forced_fallbacks_match_cold(data):
    """force_cold and a zero dirty-threshold must still be exact."""
    base, ops = data
    state = EcoState(base, delay_model=XC4000E_DELAY)
    if not _assert_step_identical(state, base, ops, XC4000E_DELAY,
                                  force_cold=True):
        return
    _assert_step_identical(state, base, ops, XC4000E_DELAY,
                           dirty_threshold=0.0)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=base_and_edits(max_steps=2))
def test_eco_under_kernel_check_mode(data):
    """REPRO_KERNEL_CHECK=1 runs the built-in cold cross-check inside
    eco_retime itself; any divergence raises KernelMismatchError."""
    base, ops = data
    state = EcoState(base, delay_model=UNIT_DELAY)
    previous = kernels.set_kernel_check(True)
    try:
        _assert_step_identical(state, base, ops, UNIT_DELAY)
    finally:
        kernels.set_kernel_check(previous)


@RELAXED
@given(circuit=circuits(max_inputs=4, max_gates=10, max_registers=4))
def test_repeated_identical_edit_hits_the_cache(circuit):
    """The second submission of the same edit must come from the solve
    cache (plan == reuse) and still match cold exactly."""
    try:
        cold = mc_retime(circuit, delay_model=UNIT_DELAY)
    except Exception:  # noqa: BLE001 — unsolvable draws are not the point here
        return
    state = EcoState(circuit, delay_model=UNIT_DELAY)
    first = eco_retime(state, [])
    second = eco_retime(state, [])
    assert first.plan == "resolve" or first.plan == "cold"
    # conflict-free solves are cached; conflicted trajectories are not
    # (their replay depends on justification state, so they re-solve)
    if first.plan == "resolve" and first.result.resolve_attempts == 0:
        assert second.plan == "reuse"
    for eco in (first, second):
        assert write_blif(eco.result.circuit) == write_blif(cold.circuit)
        assert deterministic_metrics(eco.result) == deterministic_metrics(cold)


@RELAXED
@given(data=base_and_edits(max_steps=3))
def test_diff_roundtrip_classification(data):
    """The diff of base vs (base + script) touches exactly the cells the
    script names, and an empty tail keeps the diff stable."""
    base, ops = data
    edited = apply_edit_script(base, ops)
    d = diff_circuits(base, edited)
    named = {op["name"] for op in ops}
    touched = set(
        d.added_gates + d.removed_gates + d.retyped_gates + d.rewired_gates
        + d.control_changed + d.reset_changed
    )
    # every touched cell traces back to an op (ops may cancel out, so <=)
    assert touched <= named
    assert diff_circuits(edited, edited.clone()).is_empty
