"""Unit tests for the netlist-diff layer and edit scripts."""

from __future__ import annotations

import pytest

from repro.eco import apply_edit_script, diff_circuits
from repro.logic.ternary import T1, TX
from repro.netlist import GateFn, read_blif


def _base():
    return read_blif(
        """
.model eco_base
.inputs clk a b sel
.outputs out
.names a b n1
11 1
.names n1 q1 n2
10 1
.mcff r1 d=n2 q=q1 clk=clk
.mcff r2 d=n1 q=q2 clk=clk en=sel
.names q1 q2 out
01 1
.end
"""
    )


def test_identical_circuits_diff_empty():
    base = _base()
    d = diff_circuits(base, base.clone())
    assert d.is_empty
    assert d.topology_preserving
    assert d.n_touched_cells == 0
    assert d.dirty_fraction(base) == 0.0


def test_retype_is_topology_preserving():
    base = _base()
    edited = apply_edit_script(base, [{"op": "retype_gate", "name": "lut$n1", "fn": "nand"}])
    assert edited.gates["lut$n1"].fn is GateFn.NAND
    d = diff_circuits(base, edited)
    assert d.retyped_gates == ["lut$n1"]
    assert d.topology_preserving
    assert not d.is_empty
    assert "n1" in d.touched_nets


def test_lut_table_change_is_a_retype():
    base = _base()
    edited = apply_edit_script(
        base, [{"op": "retype_gate", "name": "lut$n2", "fn": "lut", "table": 6}]
    )
    d = diff_circuits(base, edited)
    assert d.retyped_gates == ["lut$n2"]
    assert d.topology_preserving


def test_set_reset_is_topology_preserving():
    base = _base()
    edited = apply_edit_script(
        base, [{"op": "set_reset", "name": "r1", "sval": int(T1), "aval": int(TX)}]
    )
    d = diff_circuits(base, edited)
    assert d.reset_changed == ["r1"]
    assert d.topology_preserving


def test_set_control_breaks_topology():
    base = _base()
    edited = apply_edit_script(base, [{"op": "set_control", "name": "r2", "en": None}])
    assert edited.registers["r2"].en is None
    d = diff_circuits(base, edited)
    assert d.control_changed == ["r2"]
    assert not d.topology_preserving


def test_add_and_remove_gate_break_topology():
    base = _base()
    edited = apply_edit_script(
        base,
        [
            {
                "op": "add_gate",
                "name": "extra",
                "fn": "xor",
                "inputs": ["a", "b"],
                "output": "xnet",
                "as_output": True,
            }
        ],
    )
    d = diff_circuits(base, edited)
    assert d.added_gates == ["extra"]
    assert d.io_changed  # as_output grew the output list
    assert not d.topology_preserving

    trimmed = apply_edit_script(edited, [{"op": "remove_gate", "name": "extra"}])
    assert "extra" not in trimmed.gates
    assert "xnet" not in trimmed.outputs
    d2 = diff_circuits(edited, trimmed)
    assert d2.removed_gates == ["extra"]
    assert not d2.topology_preserving


def test_dirty_fraction_counts_touched_cells():
    base = _base()
    edited = apply_edit_script(
        base,
        [
            {"op": "retype_gate", "name": "lut$n1", "fn": "or"},
            {"op": "set_reset", "name": "r1", "sval": int(T1)},
        ],
    )
    d = diff_circuits(base, edited)
    assert d.n_touched_cells == 2
    # 3 gates + 2 registers = 5 cells
    assert d.dirty_fraction(edited) == pytest.approx(2 / 5)


def test_apply_edit_script_leaves_base_untouched():
    base = _base()
    before = base.gates["lut$n1"].fn
    apply_edit_script(base, [{"op": "retype_gate", "name": "lut$n1", "fn": "nor"}])
    assert base.gates["lut$n1"].fn is before


def test_apply_edit_script_rejects_unknown_op():
    with pytest.raises(ValueError, match="unknown edit op"):
        apply_edit_script(_base(), [{"op": "fold_gate", "name": "lut$n1"}])


def test_apply_edit_script_rejects_unknown_fn():
    with pytest.raises(ValueError, match="unknown gate function"):
        apply_edit_script(_base(), [{"op": "retype_gate", "name": "lut$n1", "fn": "frob"}])


def test_apply_edit_script_rejects_missing_cell():
    with pytest.raises(KeyError):
        apply_edit_script(_base(), [{"op": "retype_gate", "name": "nope", "fn": "and"}])


def test_retype_arity_mismatch_raises():
    # the n1 gate has two inputs; MUX demands exactly three
    with pytest.raises(ValueError):
        apply_edit_script(_base(), [{"op": "retype_gate", "name": "lut$n1", "fn": "mux"}])
