"""Unit tests for :mod:`repro.eco.solve` — plans, caching, fallbacks."""

from __future__ import annotations

import pytest

from repro.eco import EcoState, deterministic_metrics, eco_retime
from repro.mcretime import mc_retime
from repro.netlist import Circuit, GateFn, write_blif
from repro.timing import UNIT_DELAY, XC4000E_DELAY


def _base() -> Circuit:
    """Small sequential circuit with a CARRY gate (0.25 ns vs 1.6 ns for
    a LUT under XC4000E — the delay-changing retype lever)."""
    c = Circuit("eco_solve")
    c.add_input("clk")
    for net in ("a", "b", "ci"):
        c.add_input(net)
    c.new_net("q1")
    c.add_gate(GateFn.CARRY, ["a", "b", "ci"], "c1", name="gc")
    c.add_gate(GateFn.XOR, ["a", "c1"], "s1", name="gx")
    c.add_gate(GateFn.BUF, ["c1"], "bc", name="gb")
    c.add_gate(GateFn.AND, ["s1", "q1"], "n3", name="ga")
    c.add_register(d="n3", q="q1", clk="clk")
    c.add_gate(GateFn.OR, ["q1", "bc"], "out", name="go")
    c.add_output("out")
    return c


RETYPE_CARRY = {"op": "retype_gate", "name": "gc", "fn": "mux"}
RETYPE_BUF = {"op": "retype_gate", "name": "gb", "fn": "or"}


def _assert_matches_cold(eco, circuit, model):
    cold = mc_retime(circuit, delay_model=model)
    assert write_blif(eco.result.circuit) == write_blif(cold.circuit)
    assert deterministic_metrics(eco.result) == deterministic_metrics(cold)


def test_empty_edit_resolves_then_reuses():
    base = _base()
    state = EcoState(base, delay_model=XC4000E_DELAY)
    first = eco_retime(state, [])
    assert first.plan == "resolve"
    assert first.patched_entries == 0
    _assert_matches_cold(first, base, XC4000E_DELAY)
    again = eco_retime(state, [])
    assert again.plan == "reuse"
    _assert_matches_cold(again, base, XC4000E_DELAY)
    assert state.stats["resolve"] == 1
    assert state.stats["reuse"] == 1
    assert state.stats["edits"] == 2


def test_delay_changing_retype_is_patched_and_exact():
    base = _base()
    state = EcoState(base, delay_model=XC4000E_DELAY)
    eco = eco_retime(state, [RETYPE_CARRY])
    assert eco.plan == "resolve"
    assert eco.patched_entries >= 1
    assert eco.diff is not None and eco.diff.retyped_gates == ["gc"]
    from repro.eco import apply_edit_script

    _assert_matches_cold(eco, apply_edit_script(base, [RETYPE_CARRY]), XC4000E_DELAY)


def test_delay_neutral_retype_shares_the_base_solve():
    # under UNIT_DELAY every gate costs 1.0, so a retype patches nothing
    # and lands on the same solve key as the un-edited design
    base = _base()
    state = EcoState(base, delay_model=UNIT_DELAY)
    eco_retime(state, [])
    eco = eco_retime(state, [{"op": "retype_gate", "name": "gx", "fn": "nand"}])
    assert eco.patched_entries == 0
    assert eco.plan == "reuse"
    from repro.eco import apply_edit_script

    edited = apply_edit_script(
        base, [{"op": "retype_gate", "name": "gx", "fn": "nand"}]
    )
    _assert_matches_cold(eco, edited, UNIT_DELAY)


def test_force_cold_fallback():
    state = EcoState(_base(), delay_model=XC4000E_DELAY)
    eco = eco_retime(state, [RETYPE_CARRY], force_cold=True)
    assert eco.plan == "cold"
    assert eco.fallback_reason == "forced"
    assert state.stats["cold"] == 1


def test_dirty_threshold_zero_forces_cold():
    state = EcoState(_base(), delay_model=XC4000E_DELAY)
    eco = eco_retime(state, [RETYPE_CARRY], dirty_threshold=0.0)
    assert eco.plan == "cold"
    assert eco.fallback_reason == "dirty_fraction"
    assert eco.dirty_fraction > 0.0


def test_structural_edit_falls_back_cold():
    base = _base()
    state = EcoState(base, delay_model=XC4000E_DELAY)
    ops = [
        {
            "op": "add_gate",
            "name": "extra",
            "fn": "and",
            "inputs": ["a", "b"],
            "output": "xnet",
            "as_output": True,
        }
    ]
    eco = eco_retime(state, ops)
    assert eco.plan == "cold"
    assert eco.fallback_reason == "structural"
    from repro.eco import apply_edit_script

    _assert_matches_cold(eco, apply_edit_script(base, ops), XC4000E_DELAY)


def test_control_edit_falls_back_cold():
    base = _base()
    state = EcoState(base, delay_model=XC4000E_DELAY)
    ops = [{"op": "set_control", "name": "r0", "en": "a"}]
    reg = next(iter(base.registers))
    ops[0]["name"] = reg
    eco = eco_retime(state, ops)
    assert eco.plan == "cold"
    assert eco.fallback_reason == "structural"


def test_conflicting_model_rejected():
    state = EcoState(_base(), delay_model=XC4000E_DELAY)
    with pytest.raises(ValueError, match="delay_model"):
        eco_retime(state, [], delay_model=UNIT_DELAY)


def test_solve_cache_eviction_is_lru_bounded():
    base = _base()
    state = EcoState(base, delay_model=XC4000E_DELAY, max_solve_records=1)
    assert eco_retime(state, [RETYPE_CARRY]).plan == "resolve"
    assert eco_retime(state, [RETYPE_CARRY]).plan == "reuse"
    # a different delay-changing edit claims the single slot...
    assert eco_retime(state, [RETYPE_BUF]).plan == "resolve"
    # ...so the first edit must re-solve (still exact, just not cached)
    evicted = eco_retime(state, [RETYPE_CARRY])
    assert evicted.plan == "resolve"
    from repro.eco import apply_edit_script

    _assert_matches_cold(
        evicted, apply_edit_script(base, [RETYPE_CARRY]), XC4000E_DELAY
    )


def test_accepts_edited_circuit_instead_of_script():
    base = _base()
    state = EcoState(base, delay_model=XC4000E_DELAY)
    from repro.eco import apply_edit_script

    edited = apply_edit_script(base, [RETYPE_CARRY])
    eco = eco_retime(state, edited)
    assert eco.plan == "resolve"
    _assert_matches_cold(eco, edited, XC4000E_DELAY)
