"""Tests for the ablation studies (design-decision analyses)."""

import pytest

from repro.experiments.ablations import (
    bounds_ablation,
    classification_ablation,
    constraints_ablation,
    sharing_ablation,
)
from repro.flows import baseline_flow
from repro.logic.ternary import T0
from repro.netlist import Circuit, GateFn
from repro.synth import DesignSpec, build_design, generate


@pytest.fixture(scope="module")
def mapped_c5():
    spec_design = build_design("C5", scale=0.4)
    return baseline_flow(spec_design.circuit).circuit


class TestClassificationAblation:
    def test_semantic_never_more_classes(self, mapped_c5):
        result = classification_ablation(mapped_c5)
        assert result.semantic_classes <= result.syntactic_classes
        assert result.semantic_steps_possible >= result.syntactic_steps_possible

    def test_buffered_control_shows_difference(self):
        """A buffered enable splits a class syntactically but not
        semantically, restricting a joint move."""
        c = Circuit("buffered")
        for net in ("clk", "en", "a", "b"):
            c.add_input(net)
        c.add_gate(GateFn.BUF, ["en"], "en_buf", name="buf")
        c.add_register(d="a", q="qa", clk="clk", en="en", name="ra")
        c.add_register(d="b", q="qb", clk="clk", en="en_buf", name="rb")
        c.add_gate(GateFn.AND, ["qa", "qb"], "y", name="g")
        c.add_output("y")
        result = classification_ablation(c)
        assert result.semantic_classes == 1
        assert result.syntactic_classes == 2
        assert result.extra_freedom > 0  # the joint forward move at g


class TestBoundsAblation:
    def test_unconstrained_at_least_as_fast(self, mapped_c5):
        result = bounds_ablation(mapped_c5)
        assert result.phi_without_bounds <= result.phi_with_bounds + 1e-9

    def test_mixed_classes_make_it_illegal(self):
        """Two-class circuit where ignoring classes crosses a bound."""
        c = Circuit("mixed")
        for net in ("clk", "e1", "e2", "a", "b"):
            c.add_input(net)
        c.add_register(d="a", q="qa", clk="clk", en="e1", name="ra")
        c.add_register(d="b", q="qb", clk="clk", en="e2", name="rb")
        n1 = c.add_gate(GateFn.AND, ["qa", "qb"], "n1", name="g1").output
        n2 = c.add_gate(GateFn.NOT, [n1], "n2", name="g2").output
        n3 = c.add_gate(GateFn.XOR, [n2, n1], "n3", name="g3").output
        c.add_register(d=n3, q="qo", clk="clk", en="e1", name="ro")
        c.add_output("qo")
        result = bounds_ablation(c)
        # without bounds the mixed input layer "moves" through g1
        assert result.phi_without_bounds < result.phi_with_bounds
        assert result.illegal_vertices > 0
        assert result.speed_illusion > 0


class TestSharingAblation:
    def test_corrected_never_undercounts(self, mapped_c5):
        result = sharing_ablation(mapped_c5)
        assert result.corrected_registers >= result.naive_registers

    def test_multiclass_fanout_shows_undercount(self):
        """Fig. 4 scenario embedded in a circuit: one driver feeding two
        register chains of different classes."""
        c = Circuit("fig4ish")
        for net in ("clk", "e1", "e2", "a", "b"):
            c.add_input(net)
        src = c.add_gate(GateFn.XOR, ["a", "b"], "s", name="g").output
        # chain 1: two registers class A
        r1 = c.add_register(d=src, clk="clk", en="e1")
        r2 = c.add_register(d=r1.q, clk="clk", en="e1")
        # chain 2: class A then class B
        r3 = c.add_register(d=src, clk="clk", en="e1")
        r4 = c.add_register(d=r3.q, clk="clk", en="e2")
        c.add_gate(GateFn.AND, [r2.q, r4.q], "y", name="sink")
        c.add_output("y")
        result = sharing_ablation(c)
        assert result.separations >= 1
        assert result.undercount >= 0


class TestConstraintsAblation:
    def test_same_optimum_fewer_constraints(self):
        spec = DesignSpec("abl", seed=5, target_ff=18, target_gates=120,
                          n_classes=2, logic_depth=5)
        circuit = baseline_flow(generate(spec).circuit).circuit
        result = constraints_ablation(circuit)
        assert result.phi_lazy == pytest.approx(result.phi_dense, abs=1e-6)
        assert result.lazy_constraints <= result.dense_constraints
