"""CLI integration tests for the pipeline / cslow subcommands,
including the acceptance run: ``mcretime cslow --factor 3 --verify``
on a datapath benchmark netlist."""

import json

import pytest

from repro.netlist import check_circuit, read_blif, write_blif
from repro.synth import build_datapath
from repro.tools.cli import main


@pytest.fixture()
def datapath_blif(tmp_path):
    circuit = build_datapath("NTT4").circuit
    path = tmp_path / "ntt4.blif"
    path.write_text(write_blif(circuit))
    return path


class TestPipelineCommand:
    def test_basic(self, datapath_blif, tmp_path, capsys):
        out_path = tmp_path / "out.blif"
        rc = main(
            [
                "pipeline",
                str(datapath_blif),
                "--stages",
                "2",
                "-o",
                str(out_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "pipelined:" in out and "lower bound" in out
        assert "classes:" in out
        result = read_blif(out_path.read_text())
        check_circuit(result)

    def test_verify_and_report(self, datapath_blif, capsys):
        rc = main(
            [
                "pipeline",
                str(datapath_blif),
                "--stages",
                "1",
                "--verify",
                "--report",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "verified:" in out

    def test_zero_stages_allowed(self, datapath_blif, capsys):
        assert main(["pipeline", str(datapath_blif), "--stages", "0"]) == 0


class TestCSlowCommand:
    def test_acceptance_factor3_verified(self, datapath_blif, capsys):
        # the ISSUE acceptance run: C-slow a datapath benchmark by 3
        # and pass the thread-interleaving refinement check
        rc = main(
            ["cslow", str(datapath_blif), "--factor", "3", "--verify"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "C-slowed:" in out and "throughput gain" in out
        assert "verified:" in out

    def test_output_netlist(self, datapath_blif, tmp_path, capsys):
        out_path = tmp_path / "out.blif"
        rc = main(
            [
                "cslow",
                str(datapath_blif),
                "--factor",
                "2",
                "-o",
                str(out_path),
            ]
        )
        assert rc == 0
        result = read_blif(out_path.read_text())
        check_circuit(result)
        original = read_blif(datapath_blif.read_text())
        assert len(result.registers) >= 2 * len(original.registers)

    def test_mapped_flow_with_ledger(self, datapath_blif, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        rc = main(
            [
                "cslow",
                str(datapath_blif),
                "--factor",
                "2",
                "--map",
                "--ledger",
                str(ledger),
            ]
        )
        assert rc == 0
        records = [
            json.loads(line) for line in ledger.read_text().splitlines()
        ]
        assert len(records) == 1
        assert records[0]["kind"] == "cli.cslow"
        assert records[0]["fingerprint"]
        assert records[0]["span_counts"]

    def test_bad_factor_fails(self, datapath_blif, capsys):
        rc = main(["cslow", str(datapath_blif), "--factor", "0"])
        assert rc != 0
