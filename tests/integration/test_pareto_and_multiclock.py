"""Pareto-sweep experiment tests and multi-clock-domain handling."""

import pytest

from repro.experiments.pareto import pareto_sweep
from repro.flows import baseline_flow
from repro.mcretime import Classifier, mc_retime
from repro.netlist import Circuit, GateFn, check_circuit, write_blif
from repro.synth import build_design


class TestParetoSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        circuit = baseline_flow(build_design("C5", scale=0.4).circuit).circuit
        return pareto_sweep(circuit, steps=5)

    def test_targets_bracket_range(self, sweep):
        assert sweep.phi_min <= sweep.phi_original + 1e-9
        assert len(sweep.points) == 5

    def test_every_point_meets_target(self, sweep):
        for point in sweep.points:
            assert point.achieved_period <= point.target_period + 1e-9

    def test_registers_monotone_with_speed(self, sweep):
        """Tighter periods can never need fewer registers (optimal
        min-area is monotone in the constraint)."""
        ordered = sorted(sweep.points, key=lambda p: p.target_period)
        for slower, faster in zip(ordered[1:], ordered):
            assert faster.registers >= slower.registers

    def test_frontier_is_nondominated(self, sweep):
        frontier = sweep.frontier()
        for a, b in zip(frontier, frontier[1:]):
            assert a.achieved_period <= b.achieved_period
            assert a.registers > b.registers

    def test_relaxed_end_costs_no_more_than_original(self, sweep):
        relaxed = max(sweep.points, key=lambda p: p.target_period)
        assert relaxed.registers <= sweep.registers_original


def two_clock_circuit() -> Circuit:
    """Two independent clock domains touching a shared input."""
    c = Circuit("twoclk")
    for net in ("clka", "clkb", "a", "b"):
        c.add_input(net)
    # domain A: registered pipeline on clka
    c.add_register(d="a", q="qa1", clk="clka", name="ra1")
    na = c.add_gate(GateFn.NOT, ["qa1"], "na", name="ga").output
    c.add_register(d=na, q="qa2", clk="clka", name="ra2")
    c.add_output("qa2")
    # domain B: same shape on clkb
    c.add_register(d="b", q="qb1", clk="clkb", name="rb1")
    nb = c.add_gate(GateFn.NOT, ["qb1"], "nb", name="gb").output
    c.add_register(d=nb, q="qb2", clk="clkb", name="rb2")
    c.add_output("qb2")
    # a mixing gate fed by both domains (registers must not cross it
    # jointly: its input layer mixes classes)
    mix = c.add_gate(GateFn.AND, ["qa2", "qb2"], "mix", name="gmix").output
    c.add_register(d=mix, q="qm", clk="clka", name="rm")
    c.add_output("qm")
    return c


class TestMultiClock:
    def test_clock_domains_are_distinct_classes(self):
        c = two_clock_circuit()
        classifier = Classifier(c)
        assert classifier.n_classes == 2
        assert not classifier.compatible(
            c.registers["ra1"], c.registers["rb1"]
        )

    def test_retiming_never_mixes_domains(self):
        c = two_clock_circuit()
        result = mc_retime(c)
        check_circuit(result.circuit)
        # every register still has one of the two original clocks, and
        # the per-domain register counts are preserved
        clocks = {}
        for reg in result.circuit.registers.values():
            clocks.setdefault(reg.clk, 0)
            clocks[reg.clk] += 1
        assert set(clocks) <= {"clka", "clkb"}
        before = {}
        for reg in c.registers.values():
            before.setdefault(reg.clk, 0)
            before[reg.clk] += 1
        assert clocks["clkb"] == before["clkb"]

    def test_mixing_gate_cannot_move(self):
        from repro.graph import build_mcgraph
        from repro.mcretime import compute_bounds

        c = two_clock_circuit()
        classifier = Classifier(c)
        build = build_mcgraph(c, classify=classifier.classify)
        bounds = compute_bounds(build.graph)
        # gmix's fanin layer mixes clka/clkb classes: no backward move of
        # that layer is valid through it... its *fanout* register rm is
        # clka so backward across gmix needs the mixed fanin — forward
        # across gmix needs the mixed input layer: both blocked
        lo, hi = bounds.bounds["gmix"]
        assert lo == 0  # forward blocked by mixed input classes


class TestScalingStudy:
    def test_small_ladder(self):
        from repro.experiments.scaling import format_study, scaling_study

        points = scaling_study("C5", scales=(0.15, 0.3))
        assert len(points) == 2
        assert points[0].n_luts <= points[1].n_luts
        for p in points:
            assert p.retime_seconds > 0
            assert 0.0 <= p.mc_overhead_fraction <= 0.5
        text = format_study(points)
        assert "mc-overhead" in text and "0.30" in text
