"""Hypothesis fuzzing of the full stack on random valid circuits.

Every property here must hold for *any* structurally valid synchronous
circuit — shrinking gives minimal counterexamples when they don't.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.graph import build_mcgraph
from repro.logic.ternary import T0
from repro.mcretime import Classifier, compute_bounds, mc_retime
from repro.netlist import check_circuit, read_blif, write_blif
from repro.opt import optimize, sweep_equivalent_gates
from repro.techmap import map_luts
from tests.strategies import circuits

RELAXED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@RELAXED
@given(circuit=circuits())
def test_blif_roundtrip_any_circuit(circuit):
    check_circuit(circuit)
    again = read_blif(write_blif(circuit))
    check_circuit(again)
    assert write_blif(again) == write_blif(circuit)


@RELAXED
@given(circuit=circuits())
def test_optimize_preserves_validity(circuit):
    optimize(circuit)
    check_circuit(circuit)
    sweep_equivalent_gates(circuit)
    check_circuit(circuit)


@RELAXED
@given(circuit=circuits())
def test_mapping_any_circuit(circuit):
    result = map_luts(circuit)
    check_circuit(result.circuit)
    assert all(g.n_inputs <= 4 for g in result.circuit.gates.values())


@RELAXED
@given(circuit=circuits(max_gates=10, max_registers=4))
def test_graph_build_any_circuit(circuit):
    optimize(circuit)  # drop dead logic the builder would skip anyway
    classifier = Classifier(circuit)
    build = build_mcgraph(circuit, classify=classifier.classify)
    build.graph.check()
    bounds = compute_bounds(build.graph)
    for name, (lo, hi) in bounds.bounds.items():
        assert lo <= 0 <= hi


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(circuit=circuits(max_gates=10, max_registers=4))
def test_mc_retime_any_circuit(circuit):
    """The engine must either retime legally or fail loudly — never
    corrupt the netlist or worsen the graph period."""
    result = mc_retime(circuit)
    check_circuit(result.circuit)
    assert result.period_after <= result.period_before + 1e-9
    assert result.steps_possible >= result.steps_moved
