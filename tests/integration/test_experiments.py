"""Integration tests: the experiment regenerators at reduced scale."""

import pytest

from repro.experiments import figures, table1, table2, table3
from repro.experiments.runner import main
from repro.logic.ternary import T0, T1

SCALE = 0.3
NAMES = ["C1", "C3", "C5"]


@pytest.fixture(scope="module")
def t1():
    return table1.run(SCALE, NAMES)


@pytest.fixture(scope="module")
def t2(t1):
    _, flows = t1
    return table2.run(SCALE, NAMES, baselines=flows)


class TestTable1:
    def test_rows_in_order(self, t1):
        rows, _ = t1
        assert [r.name for r in rows] == NAMES

    def test_flags_match_specs(self, t1):
        rows, _ = t1
        by_name = {r.name: r for r in rows}
        assert by_name["C1"].has_async and by_name["C1"].has_enable
        assert not by_name["C3"].has_async

    def test_totals(self, t1):
        rows, _ = t1
        total = table1.totals(rows)
        assert total.n_ff == sum(r.n_ff for r in rows)
        assert total.delay == pytest.approx(sum(r.delay for r in rows))

    def test_as_dict_columns(self, t1):
        rows, _ = t1
        d = rows[0].as_dict()
        assert list(d) == ["Name", "AS/AC", "EN", "#FF", "#LUT", "Delay"]


class TestTable2:
    def test_ratios_consistent(self, t1, t2):
        t1_rows, _ = t1
        rows, _ = t2
        by1 = {r.name: r for r in t1_rows}
        for row in rows:
            assert row.rlut == pytest.approx(
                row.n_lut / by1[row.name].n_lut, rel=1e-6
            )
            assert row.rdelay == pytest.approx(
                row.delay / by1[row.name].delay, rel=1e-6
            )

    def test_steps_and_classes(self, t2):
        rows, _ = t2
        for row in rows:
            assert row.steps_possible >= row.steps_moved >= 0
            assert row.n_classes >= 1

    def test_prose_stats(self, t2):
        rows, _ = t2
        for row in rows:
            assert 0.0 <= row.local_fraction <= 1.0
            assert row.cpu_seconds > 0

    def test_never_slower(self, t2):
        rows, _ = t2
        for row in rows:
            assert row.rdelay <= 1.05


class TestTable3:
    def test_rows_and_ratios(self, t1, t2):
        t1_rows, _ = t1
        t2_rows, _ = t2
        rows = table3.run(SCALE, NAMES, t1_rows, t2_rows)
        assert {r.name for r in rows} == set(NAMES)
        for row in rows:
            assert row.n_ff > 0 and row.n_lut > 0
            assert row.rlut1 > 0 and row.rdelay2 > 0
        totals = table3.totals(rows)
        assert totals["#FF"] == sum(r.n_ff for r in rows)


class TestFigures:
    def test_figure1_matches_paper(self):
        f = figures.figure1()
        assert f.original_ff == 2
        assert f.mc_ff == 1  # circuit b): one shared EN register
        assert f.retimed_decomposed_ff == 3
        assert f.mc_advantage_ff == 2  # paper: two registers
        assert f.mc_advantage_gates == 2  # paper: two multiplexors

    def test_figure4_matches_paper(self):
        f = figures.figure4()
        assert f.naive_count == 2  # the under-estimate
        assert f.true_count == 3  # actual multi-class cost
        assert f.corrected_count == 3  # our model's estimate
        assert f.separations == 1

    def test_figure5_matches_paper(self):
        f = figures.figure5()
        assert f.global_steps == 1
        assert f.local_steps == 2
        assert f.equivalent
        assert f.final_values == {"x1": T1, "x2": T1, "x3": T0}


class TestRunner:
    def test_cli_figures_only(self, capsys):
        assert main(["--only", "figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 4" in out and "Figure 5" in out

    def test_cli_small_tables(self, capsys):
        assert main(["--scale", "0.2", "--designs", "C3", "--only", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "C3" in out
