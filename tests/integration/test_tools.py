"""Tests for the mcretime CLI and the DOT exporters."""

import pytest

from repro.graph import build_mcgraph
from repro.netlist import read_blif, read_verilog, write_blif, check_circuit
from repro.synth import build_design
from repro.tools import circuit_to_dot, graph_to_dot
from repro.tools.cli import main


@pytest.fixture()
def blif_file(tmp_path):
    circuit = build_design("C2", scale=0.4).circuit
    path = tmp_path / "design.blif"
    path.write_text(write_blif(circuit))
    return path


class TestCli:
    def test_check_only(self, blif_file, capsys):
        assert main([str(blif_file), "--check"]) == 0
        out = capsys.readouterr().out
        assert "FF" in out and "delay" in out

    def test_retime_blif_to_blif(self, blif_file, tmp_path, capsys):
        out_path = tmp_path / "out.blif"
        assert main([str(blif_file), "-o", str(out_path)]) == 0
        result = read_blif(out_path.read_text())
        check_circuit(result)
        assert "retimed:" in capsys.readouterr().out

    def test_retime_with_map_to_verilog(self, blif_file, tmp_path):
        out_path = tmp_path / "out.v"
        assert main([str(blif_file), "--map", "-o", str(out_path)]) == 0
        result = read_verilog(out_path.read_text())
        check_circuit(result)
        assert result.registers

    def test_report_flag(self, blif_file, capsys):
        assert main([str(blif_file), "--report"]) == 0
        out = capsys.readouterr().out
        assert "classes" in out and "justification" in out

    def test_target_period(self, blif_file, capsys):
        assert main([str(blif_file), "--target-period", "999"]) == 0

    def test_verilog_input(self, blif_file, tmp_path):
        from repro.netlist import write_verilog

        circuit = read_blif(blif_file.read_text())
        v_path = tmp_path / "design.v"
        v_path.write_text(write_verilog(circuit))
        assert main([str(v_path), "--check"]) == 0

    def test_objective_minperiod(self, blif_file):
        assert main([str(blif_file), "--objective", "minperiod"]) == 0

    def test_syntactic_classes(self, blif_file):
        assert main([str(blif_file), "--syntactic-classes"]) == 0


class TestDot:
    def test_circuit_dot(self):
        circuit = build_design("C2", scale=0.3).circuit
        text = circuit_to_dot(circuit)
        assert text.startswith("digraph")
        assert text.rstrip().endswith("}")
        # every register appears, with its control annotation
        for name, reg in circuit.registers.items():
            assert f'"{name}"' in text
        assert "style=dashed" in text  # control-pin edges

    def test_graph_dot_with_retiming(self):
        circuit = build_design("C2", scale=0.3).circuit
        graph = build_mcgraph(circuit).graph
        r = {v: 0 for v in graph.vertices}
        text = graph_to_dot(graph, r)
        assert text.startswith("digraph")
        assert "$host" in text
        assert "[C" in text  # class-annotated register sequences

    def test_graph_dot_weights_respect_r(self):
        from repro.graph import HOST, RetimingGraph

        g = RetimingGraph("t")
        g.add_host()
        g.add_vertex("a", 1.0)
        g.add_vertex("b", 1.0)
        g.add_edge(HOST, "a", 0)
        g.add_edge("a", "b", 1)
        g.add_edge("b", HOST, 0)
        plain = graph_to_dot(g)
        retimed = graph_to_dot(g, {"a": 0, "b": -1})
        assert '"a" -> "b" [label="1"' in plain
        # register moved forward: off a->b, onto b->host
        assert '"a" -> "b" [label=""' in retimed
        assert '"b" -> "$host" [label="1"' in retimed
