"""Sequential equivalence of retimed circuits — the acid test.

Retiming with justified reset states must preserve I/O behaviour from
the reset state onward.  Because justification may *refine* don't-cares
(pick binary values where the original state was X), the correct check
is refinement: whenever the original circuit's output is binary, the
retimed circuit must produce exactly that value.
"""

import itertools
import random

import pytest

from repro.logic.simulate import SequentialSimulator
from repro.logic.ternary import T0, T1, TX
from repro.mcretime import mc_retime
from repro.netlist import Circuit, check_circuit
from repro.synth import build_design
from repro.techmap import XC4000E_ARCH, map_luts
from repro.timing import XC4000E_DELAY


def drive_all_inputs(circuit: Circuit, rng: random.Random) -> dict[str, int]:
    vec = {}
    for net in circuit.inputs:
        if net == "clk":
            continue
        vec[net] = T1 if rng.random() < 0.5 else T0
    return vec


def assert_refines(original: Circuit, retimed: Circuit, cycles: int, seed: int):
    """Original-binary outputs must be reproduced cycle by cycle.

    Thin wrapper over the public checker (which keeps unconstrained
    initial registers at X — see repro.verify for why that matters)."""
    from repro.verify import check_refinement

    result = check_refinement(
        original,
        retimed,
        cycles=cycles,
        seed=seed,
        reset_prefixes=("rst", "srst"),
    )
    assert result.equivalent, f"refinement violated: {result.reason}"


@pytest.mark.parametrize("name", ["C1", "C2", "C3", "C5", "C8"])
def test_designs_retime_equivalent(name):
    design = build_design(name, scale=0.35)
    work = design.circuit.clone()
    XC4000E_ARCH.prepare(work)
    mapped = map_luts(work).circuit
    result = mc_retime(mapped, delay_model=XC4000E_DELAY)
    check_circuit(result.circuit)
    # deterministic per-name seed (hash() varies with PYTHONHASHSEED)
    seed = sum(ord(ch) for ch in name)
    assert_refines(mapped, result.circuit, cycles=40, seed=seed)


@pytest.mark.parametrize("seed", range(6))
def test_random_designs_retime_equivalent(seed):
    """Fresh random specs (not the calibrated ten) — broader structure."""
    from repro.synth import DesignSpec, generate

    rng = random.Random(seed)
    spec = DesignSpec(
        name=f"rand{seed}",
        seed=seed * 7 + 1,
        target_ff=rng.randint(8, 30),
        target_gates=rng.randint(60, 260),
        n_classes=rng.randint(1, 5),
        has_enable=rng.random() < 0.8,
        has_async=rng.random() < 0.8,
        has_sync=rng.random() < 0.4,
        logic_depth=rng.randint(3, 10),
        n_inputs=rng.randint(4, 10),
    )
    design = generate(spec)
    work = design.circuit.clone()
    XC4000E_ARCH.prepare(work)  # decompose any sync resets, as the flow does
    mapped = map_luts(work).circuit
    result = mc_retime(mapped, delay_model=XC4000E_DELAY)
    check_circuit(result.circuit)
    assert result.period_after <= result.period_before + 1e-9
    assert_refines(mapped, result.circuit, cycles=32, seed=seed)


@pytest.mark.parametrize("seed", range(4))
def test_minperiod_objective_equivalent(seed):
    from repro.synth import DesignSpec, generate

    spec = DesignSpec(
        name=f"mp{seed}",
        seed=seed + 100,
        target_ff=14,
        target_gates=90,
        n_classes=2,
        logic_depth=5,
    )
    design = generate(spec)
    mapped = map_luts(design.circuit).circuit
    result = mc_retime(
        mapped, delay_model=XC4000E_DELAY, objective="minperiod"
    )
    check_circuit(result.circuit)
    assert_refines(mapped, result.circuit, cycles=24, seed=seed)
