"""Tests for the public verification module."""

import pytest

from repro.flows import baseline_flow, retime_flow
from repro.logic.ternary import T0, T1
from repro.mcretime import mc_retime
from repro.netlist import Circuit, GateFn
from repro.opt import optimize
from repro.synth import build_design
from repro.techmap import map_luts
from repro.verify import check_combinational, check_refinement


class TestCombinational:
    def test_mapping_is_equivalent(self):
        c = build_design("C3", scale=0.5).circuit
        mapped = map_luts(c).circuit
        result = check_combinational(c, mapped)
        assert result.equivalent, result.reason

    def test_optimize_is_equivalent(self):
        c = build_design("C2", scale=0.5).circuit
        opt = c.clone()
        optimize(opt)
        assert check_combinational(c, opt).equivalent

    def test_detects_bug(self):
        c = Circuit("bug")
        c.add_input("a")
        c.add_input("b")
        c.add_gate(GateFn.AND, ["a", "b"], "y")
        c.add_output("y")
        broken = Circuit("bug")
        broken.add_input("a")
        broken.add_input("b")
        broken.add_gate(GateFn.OR, ["a", "b"], "y")
        broken.add_output("y")
        result = check_combinational(c, broken)
        assert not result.equivalent
        index, assignment = result.counterexample
        assert index == 0
        # the witness distinguishes AND from OR: exactly one input high
        assert sum(assignment.values()) == 1

    def test_output_count_mismatch(self):
        a = Circuit()
        a.add_input("x")
        a.add_output("x")
        b = Circuit()
        b.add_input("x")
        assert not check_combinational(a, b).equivalent


class TestRefinement:
    def test_retimed_design_refines(self):
        base = baseline_flow(build_design("C5", scale=0.35).circuit)
        result = mc_retime(base.circuit)
        check = check_refinement(base.circuit, result.circuit, cycles=40)
        assert check.equivalent, check.reason

    def test_full_flow_refines(self):
        design = build_design("C1", scale=0.5)
        base = baseline_flow(design.circuit)
        flow = retime_flow(design.circuit, mapped=base)
        check = check_refinement(base.circuit, flow.circuit, cycles=40)
        assert check.equivalent, check.reason

    def test_detects_wrong_reset_value(self):
        def build(sval):
            c = Circuit("r")
            for n in ("clk", "rs", "d"):
                c.add_input(n)
            c.add_register(d="d", q="q", clk="clk", sr="rs", sval=sval)
            c.add_output("q")
            return c

        result = check_refinement(build(T1), build(T0), cycles=4)
        assert not result.equivalent
        cycle, index, expected, got = result.counterexample
        assert (expected, got) == (T1, T0)

    def test_detects_dropped_register(self):
        c = Circuit("seq")
        for n in ("clk", "d"):
            c.add_input(n)
        c.add_register(d="d", q="q", clk="clk")
        c.add_output("q")
        comb = Circuit("comb")
        for n in ("clk", "d"):
            comb.add_input(n)
        comb.add_gate(GateFn.BUF, ["d"], "q")
        comb.add_output("q")
        assert not check_refinement(c, comb, cycles=8).equivalent

    def test_deterministic(self):
        base = baseline_flow(build_design("C2", scale=0.5).circuit)
        result = mc_retime(base.circuit)
        a = check_refinement(base.circuit, result.circuit, seed=3)
        b = check_refinement(base.circuit, result.circuit, seed=3)
        assert a.equivalent == b.equivalent
