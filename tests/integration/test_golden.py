"""Golden regression tests: pinned end-to-end retiming outputs.

The engine is deterministic (hash-seed independent), so these snapshots
pin the exact behaviour of the whole pipeline.  If an intentional
algorithm change shifts a golden file, regenerate with::

    python -c "from tests.integration.test_golden import regenerate; regenerate()"

and review the structural diff before committing to it.
"""

from pathlib import Path

import pytest

from repro.mcretime import mc_retime
from repro.netlist import check_circuit, read_blif, write_blif
from repro.timing import XC4000E_DELAY

DATA = Path(__file__).resolve().parent.parent / "data"
CASES = ["c2_small", "c3_small"]


def regenerate() -> None:
    """Refresh the golden outputs (manual use)."""
    for name in CASES:
        mapped = read_blif((DATA / f"{name}_mapped.blif").read_text())
        result = mc_retime(mapped, delay_model=XC4000E_DELAY)
        (DATA / f"{name}_retimed.golden.blif").write_text(
            write_blif(result.circuit)
        )


@pytest.mark.parametrize("name", CASES)
def test_inputs_parse_and_validate(name):
    for suffix in ("", "_mapped"):
        circuit = read_blif((DATA / f"{name}{suffix}.blif").read_text())
        check_circuit(circuit)


@pytest.mark.parametrize("name", CASES)
def test_retiming_matches_golden(name):
    mapped = read_blif((DATA / f"{name}_mapped.blif").read_text())
    result = mc_retime(mapped, delay_model=XC4000E_DELAY)
    golden = (DATA / f"{name}_retimed.golden.blif").read_text()
    assert write_blif(result.circuit) == golden


@pytest.mark.parametrize("name", CASES)
def test_golden_is_valid_circuit(name):
    circuit = read_blif((DATA / f"{name}_retimed.golden.blif").read_text())
    check_circuit(circuit)
