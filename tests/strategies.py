"""Shared hypothesis strategies for random synchronous circuits.

Builds structurally valid circuits with complex registers, suitable for
fuzzing any layer of the stack (I/O round-trips, optimisation passes,
mapping, retiming).  Circuits are guaranteed to validate
(`check_circuit`) and to be free of combinational cycles by
construction: gates only read already-driven nets, registers may read
anything (closing only sequential loops).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.logic.ternary import T0, T1, TX
from repro.netlist import Circuit, GateFn

_GATE_FNS = [
    GateFn.AND,
    GateFn.OR,
    GateFn.XOR,
    GateFn.NAND,
    GateFn.NOR,
    GateFn.NOT,
    GateFn.BUF,
    GateFn.MUX,
    GateFn.LUT,
    GateFn.CARRY,
]


@st.composite
def circuits(
    draw,
    max_inputs: int = 5,
    max_gates: int = 14,
    max_registers: int = 5,
    with_controls: bool = True,
) -> Circuit:
    """Strategy producing valid synchronous circuits."""
    c = Circuit("fuzz")
    c.add_input("clk")
    n_inputs = draw(st.integers(min_value=1, max_value=max_inputs))
    nets = [c.add_input(f"i{k}") for k in range(n_inputs)]
    control_pool = list(nets)

    # pre-declare register Q nets so gates can read sequential feedback
    n_regs = draw(st.integers(min_value=0, max_value=max_registers))
    q_nets = [c.new_net(f"fq{k}") for k in range(n_regs)]
    readable = nets + q_nets

    n_gates = draw(st.integers(min_value=1, max_value=max_gates))
    for _ in range(n_gates):
        fn = draw(st.sampled_from(_GATE_FNS))
        if fn in (GateFn.NOT, GateFn.BUF):
            ins = [draw(st.sampled_from(readable))]
        elif fn in (GateFn.MUX, GateFn.CARRY):
            ins = [draw(st.sampled_from(readable)) for _ in range(3)]
        elif fn is GateFn.LUT:
            arity = draw(st.integers(min_value=1, max_value=3))
            ins = [draw(st.sampled_from(readable)) for _ in range(arity)]
        else:
            arity = draw(st.integers(min_value=2, max_value=3))
            ins = [draw(st.sampled_from(readable)) for _ in range(arity)]
        if fn is GateFn.LUT:
            table = draw(
                st.integers(min_value=0, max_value=(1 << (1 << len(ins))) - 1)
            )
            gate = c.add_gate(fn, ins, table=table)
        else:
            gate = c.add_gate(fn, ins)
        readable.append(gate.output)

    for k in range(n_regs):
        # exclude later registers' Q nets from this register's D so no
        # *pure* register cycle (register loop without a gate) forms —
        # the retiming graph model rejects those by design; loops
        # through gates remain possible and welcome
        d_pool = [n for n in readable if n not in q_nets[k:]]
        d = draw(st.sampled_from(d_pool or readable[:n_inputs]))
        en = sr = ar = None
        sval = aval = TX
        if with_controls:
            if draw(st.booleans()):
                en = draw(st.sampled_from(control_pool))
            if draw(st.booleans()):
                sr = draw(st.sampled_from(control_pool))
                sval = draw(st.sampled_from([T0, T1, TX]))
            if draw(st.booleans()):
                ar = draw(st.sampled_from(control_pool))
                aval = draw(st.sampled_from([T0, T1, TX]))
        c.add_register(
            d=d, q=q_nets[k], clk="clk", en=en, sr=sr, ar=ar,
            sval=sval, aval=aval,
        )

    # outputs: a few driven nets (always at least one)
    candidates = readable[n_inputs:] or readable
    n_outs = draw(st.integers(min_value=1, max_value=min(3, len(candidates))))
    seen = set()
    for _ in range(n_outs):
        net = draw(st.sampled_from(candidates))
        if net not in seen:
            seen.add(net)
            c.add_output(net)
    return c
