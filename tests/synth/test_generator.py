"""Tests for the synthetic design generator and the C1..C10 specs."""

import pytest

from repro.mcretime import Classifier
from repro.netlist import check_circuit, circuit_stats, write_blif, read_blif
from repro.synth import (
    DESIGN_NAMES,
    DesignSpec,
    all_designs,
    build_design,
    design_spec,
    generate,
)


class TestGenerator:
    def test_deterministic(self):
        a = build_design("C1")
        b = build_design("C1")
        assert write_blif(a.circuit) == write_blif(b.circuit)

    def test_different_seeds_differ(self):
        a = generate(DesignSpec("x", 1, 20, 100))
        b = generate(DesignSpec("x", 2, 20, 100))
        assert write_blif(a.circuit) != write_blif(b.circuit)

    def test_structurally_valid(self):
        for name in ("C1", "C3", "C5"):
            check_circuit(build_design(name).circuit)

    def test_blif_roundtrip(self):
        c = build_design("C2").circuit
        again = read_blif(write_blif(c))
        check_circuit(again)
        assert again.counts() == c.counts()

    def test_capability_flags(self):
        spec = design_spec("C3")
        assert spec.has_enable and not spec.has_async
        d = build_design("C3")
        stats = circuit_stats(d.circuit)
        assert stats.has_enable and not stats.has_async

    def test_c6_has_no_enables_single_class(self):
        d = build_design("C6")
        stats = circuit_stats(d.circuit)
        assert not stats.has_enable and stats.has_async
        assert Classifier(d.circuit).n_classes == 1

    def test_class_counts_reasonable(self):
        for name, expected in (("C1", 8), ("C5", 15), ("C2", 3)):
            d = build_design(name)
            n = Classifier(d.circuit).n_classes
            assert 0.4 * expected <= n <= 1.2 * expected, (name, n)

    def test_ff_targets_tracked(self):
        for name, target in (("C1", 35), ("C8", 79), ("C10", 206)):
            d = build_design(name)
            ff = len(d.circuit.registers)
            assert 0.5 * target <= ff <= 1.4 * target, (name, ff)

    def test_scale_shrinks(self):
        full = build_design("C7")
        small = build_design("C7", scale=0.3)
        assert len(small.circuit.registers) < len(full.circuit.registers)
        assert len(small.circuit.gates) < len(full.circuit.gates)
        stats = circuit_stats(small.circuit)
        assert stats.has_enable and stats.has_async  # flags preserved

    def test_unknown_design_rejected(self):
        with pytest.raises(KeyError):
            design_spec("C99")

    def test_all_designs_order(self):
        designs = all_designs(scale=0.15)
        assert [d.spec.name for d in designs] == DESIGN_NAMES

    def test_every_register_clocked_by_clk(self):
        d = build_design("C4", scale=0.2)
        assert all(r.clk == "clk" for r in d.circuit.registers.values())

    def test_outputs_registered(self):
        """Primary outputs are register Qs (keeps the design retimeable)."""
        d = build_design("C5")
        for net in d.circuit.outputs:
            assert d.circuit.driver_register(net) is not None
