"""Unit tests of the generator's individual building blocks."""

import random

import pytest

from repro.logic.simulate import SequentialSimulator
from repro.logic.ternary import T0, T1
from repro.netlist import check_circuit
from repro.synth import DesignSpec
from repro.synth.generator import _Builder


def builder(seed: int = 1, **overrides) -> _Builder:
    spec = DesignSpec(
        name="block",
        seed=seed,
        target_ff=100,
        target_gates=500,
        n_classes=overrides.pop("n_classes", 1),
        has_enable=overrides.pop("has_enable", False),
        has_async=overrides.pop("has_async", False),
        **overrides,
    )
    return _Builder(spec)


def finish(b: _Builder):
    """Expose taps as outputs so the circuit validates standalone."""
    for tap in b.taps:
        b.circuit.add_output(tap)
    check_circuit(b.circuit)
    return b.circuit


class TestCounter:
    def test_counts_binary(self):
        b = builder()
        width = b.add_counter(3)
        assert width == 3
        c = finish(b)
        regs = sorted(r for r in c.registers)
        sim = SequentialSimulator(c, state={r: T0 for r in c.registers})
        values = []
        for _ in range(8):
            sim.step({})
            bits = [sim.state[r] for r in regs]
            values.append(sum(bit << i for i, bit in enumerate(bits)))
        # a 3-bit binary counter visits 1..7,0 from reset 0
        assert values == [1, 2, 3, 4, 5, 6, 7, 0]

    def test_register_count(self):
        b = builder()
        b.add_counter(6)
        assert len(b.circuit.registers) == 6


class TestShift:
    def test_delays_input(self):
        b = builder(seed=3)
        b.add_shift(4)
        c = finish(b)
        sim = SequentialSimulator(c, state={r: T0 for r in c.registers})
        outs = []
        for cycle in range(6):
            vec = {n: (T1 if cycle == 0 else T0) for n in c.inputs if n != "clk"}
            out = sim.step(vec)
            outs.append(out[c.outputs[0]])
        # the pulse appears after exactly 4 cycles
        assert outs[3] == T1 or outs[4] == T1
        assert outs[0] == T0


class TestLfsrAccumulatorFsm:
    def test_lfsr_has_feedback_cycle(self):
        b = builder(seed=5)
        b.add_lfsr(5)
        c = finish(b)
        assert len(c.registers) == 5
        # sequential loop exists: topo_gates succeeds (registers break it)
        c.topo_gates()

    def test_accumulator_register_count(self):
        b = builder(seed=7)
        b.add_accumulator(4)
        assert len(b.circuit.registers) == 4
        finish(b)

    def test_fsm_moore_output(self):
        b = builder(seed=9)
        b.add_fsm(3)
        c = finish(b)
        assert len(c.registers) == 3

    def test_feedback_block_loop_depth(self):
        b = builder(seed=11, logic_depth=8, loop_fraction=0.75)
        b.add_feedback(2)
        c = finish(b)
        assert len(c.registers) == 2
        check_circuit(c)


class TestControls:
    def test_classes_use_distinct_nets(self):
        b = builder(seed=13, n_classes=4, has_enable=True, has_async=True)
        nets = set()
        for ctrl in b.controls:
            for net in (ctrl.en, ctrl.ar, ctrl.sr):
                if net is not None:
                    assert net not in nets
                    nets.add(net)

    def test_flags_honoured(self):
        b = builder(seed=15, n_classes=3, has_enable=False, has_async=True)
        assert all(ctrl.en is None for ctrl in b.controls)
        assert any(ctrl.ar is not None for ctrl in b.controls)

    def test_derived_controls_generate_logic(self):
        spec = DesignSpec(
            name="derived",
            seed=17,
            target_ff=10,
            target_gates=50,
            n_classes=4,
            has_enable=True,
            derived_controls=1.0,
        )
        b = _Builder(spec)
        # every enable net is gate-driven, not a pin
        for ctrl in b.controls:
            if ctrl.en is not None:
                assert b.circuit.driver_gate(ctrl.en) is not None
