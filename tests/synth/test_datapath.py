"""Datapath primitives and designs: hypothesis round-trips against
integer arithmetic, determinism, and structural validity."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.logic.simulate import SequentialSimulator
from repro.logic.ternary import T0, T1
from repro.mcretime import Classifier
from repro.netlist import check_circuit, write_blif
from repro.synth import (
    DATAPATH_NAMES,
    build_datapath,
    datapath_spec,
)
from repro.synth.datapath import _DatapathBuilder
from repro.synth.generator import DesignSpec, _Builder

WIDTH = 4
MASK = (1 << WIDTH) - 1


def _spec(name="dp", n_inputs=2 * WIDTH):
    return DesignSpec(
        name=name,
        seed=11,
        target_ff=8,
        target_gates=64,
        n_classes=2,
        has_enable=True,
        has_async=True,
        derived_controls=0.0,
        n_inputs=n_inputs,
    )


def _operands():
    a = [f"in{i}" for i in range(WIDTH)]
    b = [f"in{WIDTH + i}" for i in range(WIDTH)]
    return a, b


class _Harness:
    """Drive a built datapath block cycle by cycle, reading Q words."""

    def __init__(self, circuit):
        self.circuit = circuit
        self.sim = SequentialSimulator(circuit)

    def step(self, a, b, rst=0, en=1):
        vals = {"clk": T0}
        for i in range(WIDTH):
            vals[f"in{i}"] = T1 if (a >> i) & 1 else T0
            vals[f"in{WIDTH + i}"] = T1 if (b >> i) & 1 else T0
        for net in self.circuit.inputs:
            if net.startswith("rst"):
                vals[net] = T1 if rst else T0
            elif net.startswith("en"):
                vals[net] = T1 if en else T0
        self.sim.step(vals)

    def word(self, q_nets):
        by_q = {
            reg.q: self.sim.state[name]
            for name, reg in self.circuit.registers.items()
        }
        value = 0
        for i, net in enumerate(q_nets):
            bit = by_q[net]
            assert bit in (T0, T1), (net, bit)
            if bit == T1:
                value |= 1 << i
        return value


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(
    st.tuples(st.integers(0, MASK), st.integers(0, MASK)),
    min_size=1, max_size=24,
))
def test_mac_round_trip(ops):
    builder = _Builder(_spec())
    a_nets, b_nets = _operands()
    acc = builder.add_mac(WIDTH, a_nets, b_nets)
    for q in acc:
        builder.circuit.add_output(q)
    check_circuit(builder.circuit)
    h = _Harness(builder.circuit)
    h.step(0, 0, rst=1)  # flush power-up X
    model_acc = a_reg = b_reg = 0
    for a, b in ops:
        h.step(a, b)
        model_acc = (model_acc + a_reg * b_reg) & MASK
        a_reg, b_reg = a, b
        assert h.word(acc) == model_acc


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(
    st.tuples(st.integers(0, MASK), st.integers(0, MASK)),
    min_size=1, max_size=24,
))
def test_butterfly_round_trip(ops):
    builder = _Builder(_spec())
    a_nets, b_nets = _operands()
    out = builder.add_butterfly(WIDTH, a_nets, b_nets)
    for q in out:
        builder.circuit.add_output(q)
    check_circuit(builder.circuit)
    h = _Harness(builder.circuit)
    h.step(0, 0, rst=1)
    a_reg = b_reg = 0
    for a, b in ops:
        h.step(a, b)
        assert h.word(out[:WIDTH]) == (a_reg + b_reg) & MASK
        assert h.word(out[WIDTH:]) == (a_reg - b_reg) & MASK
        a_reg, b_reg = a, b


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(
    st.tuples(st.integers(0, MASK), st.integers(0, MASK)),
    min_size=2, max_size=24,
))
def test_modmul_round_trip(ops):
    modulus = 13
    builder = _DatapathBuilder(_spec())
    a_nets, b_nets = _operands()
    out = builder.add_modmul(WIDTH, modulus, a_nets, b_nets)
    for q in out:
        builder.circuit.add_output(q)
    check_circuit(builder.circuit)
    h = _Harness(builder.circuit)
    h.step(0, 0, rst=1)
    a_reg = b_reg = 0
    for a, b in ops:
        h.step(a, b)
        # one conditional subtract of the low product: exact when
        # p < 2*modulus, otherwise still the defined netlist function
        p = (a_reg * b_reg) & MASK
        t = (p + ((1 << WIDTH) - modulus)) & MASK
        cout = 1 if p + ((1 << WIDTH) - modulus) > MASK else 0
        assert h.word(out) == (t if cout else p)
        a_reg, b_reg = a, b


class TestDatapathDesigns:
    def test_all_valid_and_deterministic(self):
        for name in DATAPATH_NAMES:
            first = build_datapath(name)
            check_circuit(first.circuit)
            assert write_blif(first.circuit) == write_blif(
                build_datapath(name).circuit
            )

    def test_two_register_classes(self):
        # operand regs (EN) + state/output regs (EN+AR), except MAC
        # which puts everything on the resettable class
        for name, expected in (("NTT4", 2), ("MAC6", 1)):
            d = build_datapath(name)
            assert Classifier(d.circuit).n_classes == expected, name

    def test_spec_lookup_errors(self):
        import pytest

        with pytest.raises(KeyError):
            datapath_spec("NOPE")
