"""Tests for the hardwired carry-chain primitive (paper Sec. 6 setup)."""

import itertools

import pytest

from repro.logic.simulate import SequentialSimulator
from repro.logic.ternary import T0, T1
from repro.mcretime import mc_retime
from repro.netlist import (
    CONST0,
    Circuit,
    Gate,
    GateFn,
    check_circuit,
    read_blif,
    write_blif,
)
from repro.netlist.verilog import read_verilog, write_verilog
from repro.techmap import XC4000E_ARCH, map_luts
from repro.timing import XC4000E_DELAY
from tests.opt.test_passes import outputs_equal


def ripple_adder(width: int = 4) -> Circuit:
    """Registered ripple-carry adder acc' = acc + in, carry chain cells."""
    c = Circuit("adder")
    c.add_input("clk")
    ins = [c.add_input(f"b{i}") for i in range(width)]
    qs = [c.new_net(f"q{i}") for i in range(width)]
    carry = None
    for i in range(width):
        s = c.add_gate(GateFn.XOR, [qs[i], ins[i]]).output
        if carry is None:
            s2 = s
            carry = c.add_gate(GateFn.CARRY, [qs[i], ins[i], CONST0]).output
        else:
            s2 = c.add_gate(GateFn.XOR, [s, carry]).output
            carry = c.add_gate(GateFn.CARRY, [qs[i], ins[i], carry]).output
        c.add_register(d=s2, q=qs[i], clk="clk", name=f"r{i}")
    c.add_output(qs[-1])
    c.add_output(carry)
    return c


class TestCarryPrimitive:
    def test_majority_function(self):
        g = Gate("c", GateFn.CARRY, ["a", "b", "ci"], "co")
        for m in range(8):
            bits = [(m >> i) & 1 for i in range(3)]
            assert g.eval_binary(bits) == int(sum(bits) >= 2)

    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            Gate("c", GateFn.CARRY, ["a", "b"], "co")

    def test_fast_delay(self):
        g = Gate("c", GateFn.CARRY, ["a", "b", "ci"], "co")
        lut = Gate("l", GateFn.AND, ["a", "b"], "y")
        assert XC4000E_DELAY.gate_delay(g) < XC4000E_DELAY.gate_delay(lut)

    def test_adder_adds(self):
        c = ripple_adder(3)
        sim = SequentialSimulator(c, state={f"r{i}": T0 for i in range(3)})
        # add 3, then 5: accumulator holds 0 -> 3 -> 0 (3+5 = 8 mod 8)
        def vec(v):
            return {f"b{i}": (T1 if (v >> i) & 1 else T0) for i in range(3)}

        sim.step(vec(3))
        assert [sim.state[f"r{i}"] for i in range(3)] == [T1, T1, T0]
        sim.step(vec(5))
        assert [sim.state[f"r{i}"] for i in range(3)] == [T0, T0, T0]


class TestCarryThroughFlows:
    def test_mapping_preserves_carries(self):
        c = ripple_adder(4)
        result = map_luts(c)
        check_circuit(result.circuit)
        XC4000E_ARCH.check_mapped(result.circuit)
        carries = [
            g for g in result.circuit.gates.values() if g.fn is GateFn.CARRY
        ]
        # the chain head (cin = const 0) legitimately folds into a LUT
        # during constant propagation; the rest must survive verbatim
        assert len(carries) == 3

    def test_mapped_adder_equivalent(self):
        c = ripple_adder(3)
        mapped = map_luts(c).circuit
        sims = [
            SequentialSimulator(x, state={f"r{i}": T0 for i in range(3)})
            for x in (c, mapped)
        ]
        for v in (1, 3, 7, 2, 5, 6, 0, 4):
            vecs = {f"b{i}": (T1 if (v >> i) & 1 else T0) for i in range(3)}
            outs = [s.step(vecs) for s in sims]
            assert [outs[0][n] for n in c.outputs] == [
                outs[1][n] for n in mapped.outputs
            ]

    def test_retiming_crosses_carry_cells(self):
        """Registers move across carry cells like any gate — the point
        of retiming at the Xilinx-primitive level."""
        c = ripple_adder(4)
        mapped = map_luts(c).circuit
        result = mc_retime(mapped, delay_model=XC4000E_DELAY)
        check_circuit(result.circuit)
        assert result.period_after <= result.period_before + 1e-9

    def test_blif_roundtrip(self):
        c = ripple_adder(3)
        text = write_blif(c)
        assert ".mcgate carry" in text
        c2 = read_blif(text)
        check_circuit(c2)
        carries = [g for g in c2.gates.values() if g.fn is GateFn.CARRY]
        assert len(carries) == 3

    def test_verilog_writes_majority(self):
        c = ripple_adder(2)
        text = write_verilog(c)
        assert "&" in text and "|" in text
        c2 = read_verilog(text)
        check_circuit(c2)
        # function preserved even though carry-ness is lowered to gates
        # the reader auto-names registers: key states positionally
        sims = []
        for x in (c, c2):
            names = list(x.registers)
            sims.append(
                SequentialSimulator(x, state={names[0]: T1, names[1]: T0})
            )
        for v in range(4):
            vecs = {f"b{i}": (T1 if (v >> i) & 1 else T0) for i in range(2)}
            outs = [s.step(vecs) for s in sims]
            assert [outs[0][n] for n in c.outputs] == [
                outs[1][n] for n in c2.outputs
            ]
