"""Tests for decomposition passes, cut enumeration, and LUT mapping."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.simulate import SequentialSimulator, eval_nets
from repro.logic.ternary import T0, T1, TX
from repro.netlist import Circuit, GateFn, check_circuit
from repro.techmap import (
    ArchitectureError,
    XC4000E_ARCH,
    cone_truth_table,
    decompose_enables,
    decompose_sync_resets,
    decompose_to_two_input,
    enumerate_cuts,
    map_luts,
    remap,
)
from tests.opt.test_passes import outputs_equal


def random_logic(seed: int, n_inputs: int = 4, n_gates: int = 12) -> Circuit:
    rng = random.Random(seed)
    c = Circuit(f"rand{seed}")
    nets = [c.add_input(f"i{k}") for k in range(n_inputs)]
    fns = [GateFn.AND, GateFn.OR, GateFn.XOR, GateFn.NAND, GateFn.NOT]
    for k in range(n_gates):
        fn = rng.choice(fns)
        arity = 1 if fn is GateFn.NOT else rng.randint(2, 4)
        ins = [rng.choice(nets) for _ in range(arity)]
        nets.append(c.add_gate(fn, ins).output)
    for net in nets[-3:]:
        c.add_output(net)
    return c


class TestDecomposeRegisters:
    def test_sync_clear(self):
        c = Circuit()
        for n in ("clk", "rs", "d"):
            c.add_input(n)
        c.add_register(d="d", q="q", clk="clk", sr="rs", sval=T0, name="r")
        c.add_output("q")
        assert decompose_sync_resets(c) == 1
        reg = c.registers["r"]
        assert reg.sr is None
        # behavior: rs=1 clears
        sim = SequentialSimulator(c, state={"r": T1})
        sim.step({"d": T1, "rs": T1})
        assert sim.state["r"] == T0
        sim.step({"d": T1, "rs": T0})
        assert sim.state["r"] == T1

    def test_sync_set(self):
        c = Circuit()
        for n in ("clk", "rs", "d"):
            c.add_input(n)
        c.add_register(d="d", q="q", clk="clk", sr="rs", sval=T1, name="r")
        c.add_output("q")
        decompose_sync_resets(c)
        sim = SequentialSimulator(c, state={"r": T0})
        sim.step({"d": T0, "rs": T1})
        assert sim.state["r"] == T1

    def test_sync_reset_with_enable(self):
        """Reset must win even when the enable is low."""
        c = Circuit()
        for n in ("clk", "rs", "en", "d"):
            c.add_input(n)
        c.add_register(
            d="d", q="q", clk="clk", en="en", sr="rs", sval=T0, name="r"
        )
        c.add_output("q")
        decompose_sync_resets(c)
        sim = SequentialSimulator(c, state={"r": T1})
        sim.step({"d": T1, "rs": T1, "en": T0})
        assert sim.state["r"] == T0

    def test_enable_decomposition_behavior(self):
        c = Circuit()
        for n in ("clk", "en", "d"):
            c.add_input(n)
        c.add_register(d="d", q="q", clk="clk", en="en", name="r")
        c.add_output("q")
        assert decompose_enables(c) == 1
        reg = c.registers["r"]
        assert reg.en is None
        sim = SequentialSimulator(c, state={"r": T0})
        sim.step({"d": T1, "en": T0})
        assert sim.state["r"] == T0  # hold
        sim.step({"d": T1, "en": T1})
        assert sim.state["r"] == T1  # load

    def test_enable_decomposition_adds_mux(self):
        c = Circuit()
        for n in ("clk", "en", "d"):
            c.add_input(n)
        c.add_register(d="d", q="q", clk="clk", en="en", name="r")
        c.add_output("q")
        gates_before = len(c.gates)
        decompose_enables(c)
        assert len(c.gates) == gates_before + 1
        check_circuit(c)


class TestDecomposeWide:
    @pytest.mark.parametrize("seed", range(6))
    def test_equivalence(self, seed):
        c = random_logic(seed)
        before = c.clone()
        decompose_to_two_input(c)
        check_circuit(c)
        assert all(g.n_inputs <= 2 for g in c.gates.values())
        assert outputs_equal(before, c, list(c.inputs))

    @settings(max_examples=40, deadline=None)
    @given(table=st.integers(min_value=0, max_value=2**16 - 1))
    def test_shannon_lut4(self, table):
        c = Circuit()
        ins = [c.add_input(f"i{k}") for k in range(4)]
        c.add_gate(GateFn.LUT, ins, "y", name="g", table=table)
        c.add_output("y")
        before = c.clone()
        decompose_to_two_input(c)
        check_circuit(c)
        assert outputs_equal(before, c, ins)


class TestCuts:
    def test_trivial_chain(self):
        c = Circuit()
        c.add_input("a")
        n1 = c.add_gate(GateFn.NOT, ["a"]).output
        n2 = c.add_gate(GateFn.NOT, [n1]).output
        c.add_output(n2)
        db = enumerate_cuts(c, k=4)
        # the whole chain fits in one LUT: depth 1 at the output
        assert db.depth_of(n2) == 1
        assert db.best[n2].leaves == frozenset(("a",))

    def test_depth_grows_past_k_inputs(self):
        c = Circuit()
        ins = [c.add_input(f"i{k}") for k in range(8)]
        decomposed = Circuit("wide")
        net = None
        # 8-input AND tree of 2-input gates
        nets = list(ins)
        for n in ins:
            pass
        work = list(ins)
        while len(work) > 1:
            a = work.pop(0)
            b = work.pop(0)
            work.append(c.add_gate(GateFn.AND, [a, b]).output)
        c.add_output(work[0])
        db = enumerate_cuts(c, k=4)
        assert db.depth_of(work[0]) == 2  # 8 inputs need two 4-LUT levels

    def test_cut_size_bounded(self):
        c = random_logic(3)
        decompose_to_two_input(c)
        db = enumerate_cuts(c, k=4)
        for cuts in db.cuts.values():
            for cut in cuts:
                assert len(cut.leaves) <= 4


class TestMapLuts:
    @pytest.mark.parametrize("seed", range(8))
    def test_combinational_equivalence(self, seed):
        c = random_logic(seed)
        result = map_luts(c)
        check_circuit(result.circuit)
        XC4000E_ARCH.check_mapped(result.circuit)
        assert outputs_equal(c, result.circuit, list(c.inputs))

    def test_register_pins_preserved(self):
        c = Circuit()
        for n in ("clk", "e1", "e2", "a", "b"):
            c.add_input(n)
        en = c.add_gate(GateFn.AND, ["e1", "e2"], "en", name="gen").output
        n1 = c.add_gate(GateFn.XOR, ["a", "b"], "n1", name="g1").output
        c.add_register(d="n1", q="q", clk="clk", en=en, name="r")
        c.add_output("q")
        result = map_luts(c)
        reg = result.circuit.registers["r"]
        assert reg.en == "en" and reg.d == "n1"
        # the control cone was mapped too
        assert result.circuit.driver_gate("en") is not None

    def test_sequential_equivalence(self):
        c = Circuit()
        for n in ("clk", "en", "a", "b"):
            c.add_input(n)
        x = c.add_gate(GateFn.XOR, ["a", "qo"], "x", name="g1").output
        y = c.add_gate(GateFn.AND, [x, "b"], "y", name="g2").output
        c.add_register(d=y, q="qo", clk="clk", en="en", name="r")
        c.add_output("qo")
        mapped = map_luts(c).circuit
        sims = [
            SequentialSimulator(k, state={"r": T0}) for k in (c, mapped)
        ]
        for combo in itertools.product((T0, T1), repeat=3):
            vec = dict(zip(("en", "a", "b"), combo))
            outs = [s.step(vec) for s in sims]
            assert outs[0]["qo"] == outs[1]["qo"]

    def test_cone_truth_table(self):
        c = Circuit()
        c.add_input("a")
        c.add_input("b")
        n1 = c.add_gate(GateFn.AND, ["a", "b"]).output
        n2 = c.add_gate(GateFn.NOT, [n1]).output
        c.add_output(n2)
        assert cone_truth_table(c, n2, ["a", "b"]) == 0b0111  # NAND

    def test_remap_after_slicing(self):
        """Remapping a LUT netlist keeps function and LUT-legality."""
        c = random_logic(11)
        mapped = map_luts(c).circuit
        again = remap(mapped)
        check_circuit(again.circuit)
        XC4000E_ARCH.check_mapped(again.circuit)
        assert outputs_equal(c, again.circuit, list(c.inputs))

    def test_depth_reported(self):
        c = random_logic(5)
        result = map_luts(c)
        assert result.depth >= 1
        assert result.n_luts == len(result.circuit.gates)


class TestArchitecture:
    def test_check_rejects_sync_reset(self):
        c = Circuit()
        for n in ("clk", "rs", "d"):
            c.add_input(n)
        c.add_register(d="d", q="q", clk="clk", sr="rs", sval=T0)
        c.add_output("q")
        with pytest.raises(ArchitectureError):
            XC4000E_ARCH.check_mapped(c)
        XC4000E_ARCH.prepare(c)
        mapped = map_luts(c).circuit
        XC4000E_ARCH.check_mapped(mapped)

    def test_check_rejects_wide_lut(self):
        c = Circuit()
        ins = [c.add_input(f"i{k}") for k in range(5)]
        c.add_gate(GateFn.LUT, ins, "y", table=1)
        c.add_output("y")
        with pytest.raises(ArchitectureError):
            XC4000E_ARCH.check_mapped(c)

    def test_check_rejects_unmapped_primitive(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate(GateFn.NOT, ["a"], "y")
        c.add_output("y")
        with pytest.raises(ArchitectureError):
            XC4000E_ARCH.check_mapped(c)


class TestAreaMode:
    @pytest.mark.parametrize("seed", range(4))
    def test_area_mode_equivalent(self, seed):
        c = random_logic(seed + 40)
        result = map_luts(c, mode="area")
        check_circuit(result.circuit)
        XC4000E_ARCH.check_mapped(result.circuit)
        assert outputs_equal(c, result.circuit, list(c.inputs))

    @pytest.mark.parametrize("seed", range(6))
    def test_area_mode_never_deeper_than_needed(self, seed):
        """Area mode may trade depth for LUTs but must stay functional
        and within the LUT-input limit; depth mode must never use more
        levels than area mode's depth... the reverse: depth mode is the
        depth lower bound."""
        c = random_logic(seed + 60, n_gates=20)
        depth_map = map_luts(c, mode="depth")
        area_map = map_luts(c, mode="area")
        assert depth_map.depth <= area_map.depth

    def test_area_mode_saves_luts_on_shared_cone(self):
        """A multi-fanout inner cone: depth mode duplicates it into two
        covers, area flow keeps it shared."""
        c = Circuit("share")
        ins = [c.add_input(f"i{k}") for k in range(6)]
        # a 5-input inner function with two consumers
        t1 = c.add_gate(GateFn.AND, [ins[0], ins[1]]).output
        t2 = c.add_gate(GateFn.OR, [t1, ins[2]]).output
        t3 = c.add_gate(GateFn.XOR, [t2, ins[3]]).output
        inner = c.add_gate(GateFn.AND, [t3, ins[4]]).output
        y1 = c.add_gate(GateFn.XOR, [inner, ins[5]]).output
        y2 = c.add_gate(GateFn.NAND, [inner, ins[0]]).output
        c.add_output(y1)
        c.add_output(y2)
        depth_map = map_luts(c, mode="depth")
        area_map = map_luts(c, mode="area")
        assert area_map.n_luts <= depth_map.n_luts
        assert outputs_equal(c, area_map.circuit, list(c.inputs))

    def test_unknown_mode_rejected(self):
        c = random_logic(1)
        with pytest.raises(ValueError):
            map_luts(c, mode="banana")
