"""Shared graph builders for retiming-engine tests."""

from __future__ import annotations

import random

from repro.graph import HOST, RetimingGraph


def correlator() -> RetimingGraph:
    """The Leiserson–Saxe digital correlator (their running example).

    Comparators delay 3, adders delay 7; original period 24; the
    minimum feasible period is 13.
    """
    g = RetimingGraph("correlator")
    g.combinational_host = True  # the textbook environment model
    g.add_host()
    for name in ("v1", "v2", "v3", "v4"):
        g.add_vertex(name, 3.0)
    for name in ("v5", "v6", "v7"):
        g.add_vertex(name, 7.0)
    g.add_edge(HOST, "v1", 1)
    g.add_edge("v1", "v2", 1)
    g.add_edge("v2", "v3", 1)
    g.add_edge("v3", "v4", 1)
    g.add_edge("v4", "v5", 0)
    g.add_edge("v5", "v6", 0)
    g.add_edge("v6", "v7", 0)
    g.add_edge("v7", HOST, 0)
    g.add_edge("v3", "v5", 0)
    g.add_edge("v2", "v6", 0)
    g.add_edge("v1", "v7", 0)
    return g


def random_graph(
    seed: int,
    n_vertices: int = 8,
    n_edges: int = 16,
    max_w: int = 3,
    max_delay: int = 5,
) -> RetimingGraph:
    """Random legal retiming graph.

    Vertices are placed in a random topological order; edges that go
    "backward" in that order always carry at least one register, which
    guarantees every cycle has positive weight (retimeable).
    """
    rng = random.Random(seed)
    g = RetimingGraph(f"rand{seed}")
    g.add_host()
    names = [f"v{i}" for i in range(n_vertices)]
    for name in names:
        g.add_vertex(name, float(rng.randint(1, max_delay)))
    order = {name: i for i, name in enumerate(names)}
    g.add_edge(HOST, names[0], rng.randint(0, max_w))
    g.add_edge(names[-1], HOST, rng.randint(0, max_w))
    for _ in range(n_edges):
        u, v = rng.sample(names, 2)
        w = rng.randint(0, max_w)
        if order[u] >= order[v]:
            w = max(w, 1)
        g.add_edge(u, v, w)
    return g


def legal(graph: RetimingGraph, r: dict[str, int]) -> bool:
    """All retimed edge weights non-negative."""
    return all(graph.retimed_weight(e, r) >= 0 for e in graph.edges.values())
