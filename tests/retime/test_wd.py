"""Tests for the W/D matrices (paper Sec. 2 definitions)."""

import pytest

from repro.graph import HOST, RetimingGraph
from repro.retime import (
    candidate_periods,
    clock_period,
    min_period,
    wd_from_source,
    wd_matrices,
)

from .helpers import correlator, random_graph


class TestWD:
    def test_correlator_known_values(self):
        g = correlator()
        W, D = wd_matrices(g)
        # v1 -> v7 direct edge: zero registers, delay 3 + 7
        assert W["v1", "v7"] == 0
        assert D["v1", "v7"] == pytest.approx(10.0)
        # v1 -> v4 along the comparator chain: three registers
        assert W["v1", "v4"] == 3
        # diagonal: trivial path
        assert W["v1", "v1"] == 0
        assert D["v1", "v1"] == pytest.approx(3.0)

    def test_d_is_max_delay_over_min_weight_paths(self):
        g = RetimingGraph()
        g.add_vertex("a", 1.0)
        g.add_vertex("b", 2.0)
        g.add_vertex("c", 5.0)
        g.add_vertex("d", 1.0)
        # two zero-weight routes a->d: via b (delay 4) and via c (delay 7)
        g.add_edge("a", "b", 0)
        g.add_edge("b", "d", 0)
        g.add_edge("a", "c", 0)
        g.add_edge("c", "d", 0)
        W, D = wd_matrices(g)
        assert W["a", "d"] == 0
        assert D["a", "d"] == pytest.approx(7.0)

    def test_min_weight_beats_delay(self):
        g = RetimingGraph()
        g.add_vertex("a", 1.0)
        g.add_vertex("b", 1.0)
        g.add_vertex("c", 9.0)
        # route with register (weight 1, short) vs zero-weight via c
        g.add_edge("a", "b", 1)
        g.add_edge("a", "c", 0)
        g.add_edge("c", "b", 0)
        W, D = wd_matrices(g)
        assert W["a", "b"] == 0  # the register-free route wins on weight
        assert D["a", "b"] == pytest.approx(11.0)

    def test_unreachable_pairs_absent(self):
        g = RetimingGraph()
        g.add_vertex("a", 1.0)
        g.add_vertex("b", 1.0)
        g.add_edge("a", "b", 0)
        best = wd_from_source(g, "b")
        assert "a" not in best

    def test_candidate_periods_contains_optimum(self):
        g = correlator()
        candidates = candidate_periods(g)
        assert any(abs(c - 13.0) < 1e-9 for c in candidates)
        assert candidates == sorted(candidates)

    @pytest.mark.parametrize("seed", range(5))
    def test_optimum_is_a_candidate(self, seed):
        g = random_graph(seed + 50)
        phi = min_period(g).phi
        candidates = candidate_periods(g)
        assert any(abs(c - phi) < 1e-6 for c in candidates)

    @pytest.mark.parametrize("seed", range(5))
    def test_w_triangle_inequality(self, seed):
        g = random_graph(seed + 70, n_vertices=6, n_edges=12)
        # textbook semantics: paths may run through the environment, so
        # the triangle inequality holds for every intermediate vertex
        g.combinational_host = True
        W, _ = wd_matrices(g)
        vs = list(g.vertices)
        for u in vs:
            for x in vs:
                for v in vs:
                    if (u, x) in W and (x, v) in W and (u, v) in W:
                        assert W[u, v] <= W[u, x] + W[x, v]
