"""Dense (W/D) solvers must agree with the lazy production solvers."""

import pytest

from repro.retime import (
    clock_period,
    feasible_retiming,
    feasible_retiming_dense,
    min_area,
    min_area_dense,
    min_period,
    min_period_dense,
)

from .helpers import correlator, legal, random_graph


class TestDenseMinPeriod:
    def test_correlator_optimum(self):
        result = min_period_dense(correlator())
        assert result.phi == pytest.approx(13.0)
        assert legal(correlator(), result.r)

    @pytest.mark.parametrize("seed", range(10))
    def test_agrees_with_lazy(self, seed):
        g = random_graph(seed, n_vertices=7, n_edges=14)
        lazy = min_period(g)
        dense = min_period_dense(g)
        assert dense.phi == pytest.approx(lazy.phi, abs=1e-6)
        assert legal(g, dense.r)

    @pytest.mark.parametrize("seed", [3, 5, 9])
    def test_feasibility_agrees(self, seed):
        g = random_graph(seed + 20)
        phi = min_period(g).phi
        assert feasible_retiming_dense(g, phi) is not None
        below = phi - 0.5
        assert (feasible_retiming(g, below) is None) == (
            feasible_retiming_dense(g, below) is None
        )

    def test_bounds_respected(self):
        g = correlator()
        bounds = {v: (0, 0) for v in g.gate_vertices()}
        result = min_period_dense(g, bounds)
        assert result.phi == pytest.approx(24.0)


class TestDenseMinArea:
    @pytest.mark.parametrize("seed", range(8))
    def test_agrees_with_lazy(self, seed):
        g = random_graph(seed, n_vertices=6, n_edges=11)
        phi = min_period(g).phi
        lazy = min_area(g, phi)
        dense = min_area_dense(g, phi)
        assert dense.registers == lazy.registers
        assert dense.period <= phi + 1e-9
        assert legal(g, dense.r)

    def test_constraint_counts_larger(self):
        """Dense materialises far more constraints than the lazy path
        ends up needing — the Shenoy–Rudell motivation."""
        g = random_graph(77, n_vertices=10, n_edges=22)
        phi = min_period(g).phi
        lazy = min_area(g, phi)
        dense = min_area_dense(g, phi)
        assert dense.constraints >= lazy.constraints

    def test_infeasible_raises(self):
        from repro.retime import InfeasibleError

        with pytest.raises(InfeasibleError):
            min_area_dense(correlator(), 6.0)


class TestBoundsPruning:
    """The Maheshwari–Sapatnekar reduction the paper anticipates."""

    def test_pruning_preserves_optimum(self):
        from repro.retime.dense import dense_period_system
        from repro.retime.minperiod import _solve_normalized

        g = random_graph(42, n_vertices=8, n_edges=16)
        bounds = {v: (-1, 1) for v in g.gate_vertices()}
        phi = min_period_dense(g, bounds).phi
        pruned = dense_period_system(g, phi, bounds, prune_with_bounds=True)
        full = dense_period_system(g, phi, bounds, prune_with_bounds=False)
        assert pruned.pruned_constraints > 0
        assert len(pruned) + pruned.pruned_constraints == len(full)
        # both systems admit solutions achieving the same period
        for system in (pruned, full):
            r = _solve_normalized(system)
            assert r is not None
            assert clock_period(g, r) <= phi + 1e-9

    def test_tight_bounds_prune_everything(self):
        from repro.retime.dense import dense_period_system

        g = random_graph(43)
        bounds = {v: (0, 0) for v in g.gate_vertices()}
        phi = min_period_dense(g, bounds).phi
        system = dense_period_system(g, phi, bounds)
        # with all lags pinned at 0, every satisfiable period constraint
        # is implied by the bounds (and an unsatisfiable one would make
        # phi infeasible, contradiction) — so all are pruned
        assert all(c.tag != "period-dense" for c in system)
