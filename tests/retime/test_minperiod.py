"""Tests for CP/Δ, FEAS, and the lazy min-period solver."""

import pytest

from repro.graph import HOST, GraphError, RetimingGraph
from repro.retime import (
    candidate_periods,
    clock_period,
    compute_delta,
    feas,
    feasible_retiming,
    min_period,
)

from .helpers import correlator, legal, random_graph


class TestDelta:
    def test_correlator_period_24(self):
        assert clock_period(correlator()) == pytest.approx(24.0)

    def test_delta_values(self):
        g = correlator()
        sweep = compute_delta(g)
        assert sweep.delta["v4"] == pytest.approx(3.0)
        assert sweep.delta["v7"] == pytest.approx(24.0)

    def test_trace_start(self):
        g = correlator()
        sweep = compute_delta(g)
        assert sweep.trace_start("v7") == "v4"

    def test_retimed_delta(self):
        g = correlator()
        r = feasible_retiming(g, 13.0)
        assert r is not None
        sweep = compute_delta(g, r)
        assert sweep.period <= 13.0 + 1e-9
        # the adder chain (7+7+7 = 21) must have been broken
        assert any(
            g.retimed_weight(e, r) >= 1
            for e in g.edges.values()
            if (e.u, e.v) in (("v4", "v5"), ("v5", "v6"), ("v6", "v7"))
        )

    def test_negative_weight_rejected(self):
        g = correlator()
        with pytest.raises(GraphError):
            compute_delta(g, {"v5": 5})

    def test_zero_weight_cycle_rejected(self):
        g = RetimingGraph()
        g.add_vertex("a", 1.0)
        g.add_vertex("b", 1.0)
        g.add_edge("a", "b", 0)
        g.add_edge("b", "a", 0)
        with pytest.raises(GraphError):
            compute_delta(g)


class TestFeas:
    def test_correlator_13_feasible(self):
        g = correlator()
        r = feas(g, 13.0, normalize=HOST)
        assert r is not None
        assert legal(g, r)
        assert clock_period(g, r) <= 13.0 + 1e-9

    def test_correlator_12_infeasible(self):
        assert feas(correlator(), 12.0) is None

    def test_below_max_gate_delay_infeasible(self):
        assert feas(correlator(), 6.9) is None


class TestFeasibleRetiming:
    def test_correlator_13(self):
        g = correlator()
        r = feasible_retiming(g, 13.0)
        assert r is not None and legal(g, r)
        assert r[HOST] == 0
        assert clock_period(g, r) <= 13.0 + 1e-9

    def test_correlator_12_infeasible(self):
        assert feasible_retiming(correlator(), 12.0) is None

    def test_bounds_restrict_solution(self):
        g = correlator()
        # forbid all movement: only the original period is achievable
        bounds = {v: (0, 0) for v in g.gate_vertices()}
        assert feasible_retiming(g, 23.0, bounds) is None
        r = feasible_retiming(g, 24.0, bounds)
        assert r is not None
        assert all(r[v] == 0 for v in g.gate_vertices())

    def test_partial_bounds(self):
        g = correlator()
        bounds = {v: (-3, 3) for v in g.gate_vertices()}
        r = feasible_retiming(g, 13.0, bounds)
        assert r is not None
        assert all(-3 <= r[v] <= 3 for v in g.gate_vertices())


class TestMinPeriod:
    def test_correlator_optimum_13(self):
        result = min_period(correlator())
        assert result.phi == pytest.approx(13.0)
        assert legal(correlator(), result.r)

    def test_correlator_with_frozen_vertices(self):
        g = correlator()
        bounds = {v: (0, 0) for v in g.gate_vertices()}
        result = min_period(g, bounds)
        assert result.phi == pytest.approx(24.0)

    def test_single_gate(self):
        g = RetimingGraph()
        g.add_host()
        g.add_vertex("a", 4.0)
        g.add_edge(HOST, "a", 1)
        g.add_edge("a", HOST, 1)
        result = min_period(g)
        assert result.phi == pytest.approx(4.0)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_graphs_optimal(self, seed):
        """The binary-searched φ must be legal, achieved, and minimal
        among the candidate D(u,v) values."""
        g = random_graph(seed)
        result = min_period(g)
        assert legal(g, result.r)
        assert clock_period(g, result.r) <= result.phi + 1e-9
        # no candidate period strictly below is feasible
        candidates = [c for c in candidate_periods(g) if c < result.phi - 1e-9]
        if candidates:
            probe = max(candidates)
            assert feasible_retiming(g, probe) is None

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_feas_when_unpinned(self, seed):
        """On graphs whose IO pinning doesn't bite, the lazy solver and
        classic FEAS agree on feasibility at the found optimum."""
        g = random_graph(seed + 100)
        result = min_period(g)
        # FEAS has no pinning, so it can only do as well or better
        assert feas(g, result.phi + 1e-9) is not None
