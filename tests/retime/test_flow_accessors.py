"""Edge-case tests for the min-cost-flow accessors and ternary guards."""

import pytest

from repro.logic.functions import MAX_EXACT_UNKNOWNS, eval_table
from repro.logic.ternary import T1, TX
from repro.netlist import Gate, GateFn
from repro.retime import MinCostFlow


class TestFlowAccessors:
    def test_potentials_before_solve_raises(self):
        f = MinCostFlow()
        f.add_node("s", 0)
        with pytest.raises(RuntimeError):
            f.potentials()

    def test_potentials_after_solve(self):
        f = MinCostFlow()
        f.add_node("s", 2)
        f.add_node("t", -2)
        f.add_arc("s", "t", 3)
        f.solve()
        pots = f.potentials()
        assert set(pots) == {"s", "t"}
        # reduced cost of the saturating arc is tight
        assert 3 + pots["s"] - pots["t"] == pytest.approx(0.0)

    def test_arcs_view_updated(self):
        f = MinCostFlow()
        f.add_node("s", 1)
        f.add_node("t", -1)
        arc = f.add_arc("s", "t", 2)
        assert arc.flow == 0
        f.solve()
        assert [a.flow for a in f.arcs()] == [1]

    def test_node_names(self):
        f = MinCostFlow()
        f.add_node("x")
        f.add_node("y")
        assert f.node_names() == ["x", "y"]

    def test_supply_accumulates(self):
        f = MinCostFlow()
        f.add_node("s", 1)
        f.add_node("s", 2)
        f.add_node("t", -3)
        f.add_arc("s", "t", 1)
        assert f.solve() == 3

    def test_zero_supply_trivial(self):
        f = MinCostFlow()
        f.add_node("a")
        f.add_node("b")
        f.add_arc("a", "b", 5)
        assert f.solve() == 0


class TestWideGateGuard:
    def test_exact_guard_returns_x(self):
        """Past MAX_EXACT_UNKNOWNS unknown pins the sweep is skipped."""
        n = MAX_EXACT_UNKNOWNS + 1
        table = (1 << (1 << n)) - 1  # constant 1 — but too wide to prove
        assert eval_table(table, [TX] * n) == TX

    def test_exact_at_the_limit(self):
        n = MAX_EXACT_UNKNOWNS
        table = (1 << (1 << n)) - 1
        assert eval_table(table, [TX] * n) == T1
