"""Tests for the sharing model and min-cost-flow min-area retiming."""

import itertools

import pytest

from repro.graph import HOST, RetimingGraph
from repro.retime import (
    InfeasibleError,
    build_sharing_model,
    clock_period,
    min_area,
    min_period,
    shared_register_count,
)

from .helpers import correlator, legal, random_graph


class TestSharingModel:
    def test_single_fanout_costs(self):
        g = RetimingGraph()
        g.add_host()
        g.add_vertex("a", 1.0)
        g.add_vertex("b", 1.0)
        g.add_edge(HOST, "a", 0)
        g.add_edge("a", "b", 2)
        g.add_edge("b", HOST, 0)
        model = build_sharing_model(g)
        # chain: no mirror vertices anywhere
        assert model.mirrors == {}
        assert model.objective({v: 0 for v in g.vertices}) == 2

    def test_mirror_for_multifanout(self):
        g = RetimingGraph()
        g.add_host()
        g.add_vertex("a", 1.0)
        g.add_vertex("b", 1.0)
        g.add_vertex("c", 1.0)
        g.add_edge(HOST, "a", 0)
        g.add_edge("a", "b", 2)
        g.add_edge("a", "c", 3)
        g.add_edge("b", HOST, 0)
        g.add_edge("c", HOST, 0)
        model = build_sharing_model(g)
        assert "a" in model.mirrors
        mirror = model.mirrors["a"]
        assert model.graph.vertices[mirror].kind == "mirror"
        # mirror edges have weight w_bar - w_i
        weights = sorted(e.w for e in model.graph.in_edges(mirror))
        assert weights == [0, 1]
        # shared count of a's fanouts = max(2, 3) = 3
        assert model.objective({v: 0 for v in model.graph.vertices}) >= 3

    def test_objective_tracks_retiming(self):
        g = RetimingGraph()
        g.add_host()
        g.add_vertex("a", 1.0)
        g.add_vertex("b", 1.0)
        g.add_edge(HOST, "a", 1)
        g.add_edge("a", "b", 1)
        g.add_edge("b", HOST, 0)
        model = build_sharing_model(g)
        zero = {v: 0 for v in model.graph.vertices}
        assert model.objective(zero) == shared_register_count(g)
        # move a register forward across b: weight a->b drops by 1
        r = dict(zero, b=-1)
        assert model.objective(r) == shared_register_count(g, r)

    def test_shared_count_examples(self):
        g = RetimingGraph()
        g.add_vertex("a", 1.0)
        g.add_vertex("b", 1.0)
        g.add_vertex("c", 1.0)
        g.add_edge("a", "b", 2)
        g.add_edge("a", "c", 1)
        assert shared_register_count(g) == 2  # max(2,1)
        assert g.total_weight() == 3


def brute_force_min_area(graph, phi, radius=2):
    """Exhaustive min shared-count over r in a small box (tests only)."""
    movable = graph.movable_vertices()
    best = None
    for combo in itertools.product(range(-radius, radius + 1), repeat=len(movable)):
        r = dict(zip(movable, combo))
        if not legal(graph, r):
            continue
        try:
            if clock_period(graph, r) > phi + 1e-9:
                continue
        except Exception:
            continue
        count = shared_register_count(graph, r)
        if best is None or count < best:
            best = count
    return best


class TestMinArea:
    def test_correlator_at_24_not_worse(self):
        g = correlator()
        before = shared_register_count(g)
        result = min_area(g, 24.0)
        assert result.period <= 24.0 + 1e-9
        assert result.registers <= before
        assert legal(g, result.r)

    def test_correlator_at_13(self):
        g = correlator()
        result = min_area(g, 13.0)
        assert result.period <= 13.0 + 1e-9
        assert legal(g, result.r)
        # the optimum from min_period should never use fewer registers
        mp = min_period(g)
        assert result.registers <= shared_register_count(g, mp.r)

    def test_infeasible_period_raises(self):
        with pytest.raises(InfeasibleError):
            min_area(correlator(), 6.0)

    def test_respects_bounds(self):
        g = correlator()
        bounds = {v: (0, 0) for v in g.gate_vertices()}
        result = min_area(g, 24.0, bounds)
        assert all(result.r[v] == 0 for v in g.gate_vertices())

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        g = random_graph(seed, n_vertices=5, n_edges=9, max_w=2)
        phi = min_period(g).phi
        result = min_area(g, phi)
        assert result.period <= phi + 1e-9
        assert legal(g, result.r)
        expected = brute_force_min_area(g, phi)
        assert expected is not None
        assert result.registers == expected

    @pytest.mark.parametrize("seed", [20, 21, 22, 23])
    def test_relaxed_period_never_costs_more(self, seed):
        g = random_graph(seed, n_vertices=6, n_edges=12)
        phi_min = min_period(g).phi
        tight = min_area(g, phi_min)
        loose = min_area(g, phi_min * 2)
        assert loose.registers <= tight.registers

    @pytest.mark.parametrize("seed", range(30, 36))
    def test_improves_or_matches_original(self, seed):
        g = random_graph(seed)
        before = shared_register_count(g)
        phi0 = clock_period(g)
        result = min_area(g, phi0)
        assert result.registers <= before
