"""Tests for the difference-constraint solver and the min-cost flow core."""

import networkx as nx
import pytest

from repro.retime import (
    DifferenceSystem,
    FlowInfeasibleError,
    MinCostFlow,
)


class TestDifferenceSystem:
    def test_simple_solution(self):
        s = DifferenceSystem(["a", "b"])
        s.add("a", "b", 2)  # r(a) - r(b) <= 2
        r = s.solve()
        assert r is not None
        assert r["a"] - r["b"] <= 2

    def test_negative_cycle_detected(self):
        s = DifferenceSystem()
        s.add("a", "b", -1)
        s.add("b", "a", -1)
        assert s.solve() is None

    def test_negative_self_loop(self):
        s = DifferenceSystem()
        s.add("a", "a", -1)
        assert s.solve() is None

    def test_vacuous_self_loop_dropped(self):
        s = DifferenceSystem()
        assert not s.add("a", "a", 0)
        assert s.solve() == {"a": 0}

    def test_tightening(self):
        s = DifferenceSystem()
        assert s.add("a", "b", 5)
        assert not s.add("a", "b", 7)  # looser: ignored
        assert s.add("a", "b", 3)  # tighter: kept
        assert s.bound("a", "b") == 3

    def test_chain_propagation(self):
        s = DifferenceSystem()
        s.add("a", "b", -2)  # r(a) <= r(b) - 2
        s.add("b", "c", -3)
        r = s.solve()
        assert r["a"] - r["c"] <= -5

    def test_check_reports_violations(self):
        s = DifferenceSystem()
        s.add("a", "b", 1)
        assert s.check({"a": 5, "b": 0})[0].bound == 1
        assert s.check({"a": 1, "b": 0}) == []

    def test_copy_independent(self):
        s = DifferenceSystem()
        s.add("a", "b", 1)
        t = s.copy()
        t.add("a", "b", 0)
        assert s.bound("a", "b") == 1

    def test_solution_satisfies_all(self):
        s = DifferenceSystem()
        edges = [("a", "b", 3), ("b", "c", -1), ("c", "a", 0), ("a", "c", 4)]
        for u, v, b in edges:
            s.add(u, v, b)
        r = s.solve()
        assert s.check(r) == []


class TestMinCostFlow:
    def test_direct_route(self):
        f = MinCostFlow()
        f.add_node("s", 3)
        f.add_node("t", -3)
        arc = f.add_arc("s", "t", 5)
        assert f.solve() == 15
        assert arc.flow == 3

    def test_chooses_cheap_path(self):
        f = MinCostFlow()
        f.add_node("s", 2)
        f.add_node("t", -2)
        cheap = f.add_arc("s", "t", 1)
        costly = f.add_arc("s", "t", 10)
        assert f.solve() == 2
        assert cheap.flow == 2 and costly.flow == 0

    def test_capacity_forces_split(self):
        f = MinCostFlow()
        f.add_node("s", 4)
        f.add_node("t", -4)
        cheap = f.add_arc("s", "t", 1, capacity=3)
        costly = f.add_arc("s", "t", 5)
        assert f.solve() == 3 * 1 + 1 * 5
        assert cheap.flow == 3 and costly.flow == 1

    def test_transit_node(self):
        f = MinCostFlow()
        f.add_node("s", 1)
        f.add_node("m")
        f.add_node("t", -1)
        f.add_arc("s", "m", 2)
        f.add_arc("m", "t", 3)
        assert f.solve() == 5

    def test_unbalanced_rejected(self):
        f = MinCostFlow()
        f.add_node("s", 1)
        with pytest.raises(FlowInfeasibleError):
            f.solve()

    def test_unreachable_demand(self):
        f = MinCostFlow()
        f.add_node("s", 1)
        f.add_node("t", -1)
        with pytest.raises(FlowInfeasibleError):
            f.solve()

    def test_negative_cost_needs_potentials(self):
        f = MinCostFlow()
        f.add_node("s", 1)
        f.add_node("t", -1)
        f.add_arc("s", "t", -2)
        with pytest.raises(ValueError):
            f.solve()
        f2 = MinCostFlow()
        f2.add_node("s", 1)
        f2.add_node("t", -1)
        f2.add_arc("s", "t", -2)
        assert f2.solve(initial_potentials={"s": 0, "t": -2}) == -2

    def test_matches_networkx(self):
        import random

        rng = random.Random(7)
        for trial in range(10):
            n = 6
            f = MinCostFlow()
            g = nx.DiGraph()
            supplies = [0] * n
            for i in range(n - 1):
                amount = rng.randint(0, 3)
                supplies[i] += amount
                supplies[-1] -= amount
            for i in range(n):
                f.add_node(f"v{i}", supplies[i])
                g.add_node(f"v{i}", demand=-supplies[i])
            for _ in range(14):
                u, v = rng.sample(range(n), 2)
                cost = rng.randint(0, 9)
                cap = rng.randint(1, 6)
                f.add_arc(f"v{u}", f"v{v}", cost, capacity=cap)
                # networkx needs parallel-edge aggregation; use MultiDiGraph
            # rebuild as MultiDiGraph for parallel arcs
            g = nx.MultiDiGraph()
            for i in range(n):
                g.add_node(f"v{i}", demand=-supplies[i])
            for arc in f.arcs():
                g.add_edge(arc.u, arc.v, weight=arc.cost, capacity=int(arc.capacity))
            try:
                expected, _ = nx.network_simplex(g)
            except nx.NetworkXUnfeasible:
                with pytest.raises(FlowInfeasibleError):
                    f.solve()
                continue
            assert f.solve() == expected
