"""Tests for the logic optimisation passes."""

import itertools

from repro.logic.simulate import eval_nets
from repro.logic.ternary import T0, T1
from repro.netlist import CONST0, CONST1, Circuit, GateFn, check_circuit
from repro.opt import (
    collapse_buffers,
    optimize,
    propagate_constants,
    share_structural,
    sweep_dead,
)


def outputs_equal(a: Circuit, b: Circuit, input_nets: list[str]) -> bool:
    """Exhaustive combinational equivalence over shared inputs."""
    for combo in itertools.product((T0, T1), repeat=len(input_nets)):
        vec = dict(zip(input_nets, combo))
        va = eval_nets(a, vec)
        vb = eval_nets(b, vec)
        for na, nb in zip(a.outputs, b.outputs):
            if va[na] != vb[nb]:
                return False
    return True


class TestConstants:
    def test_and_with_const1_becomes_buffer_then_wire(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate(GateFn.AND, ["a", CONST1], "y", name="g")
        c.add_output("y")
        propagate_constants(c)
        collapse_buffers(c)
        assert c.gates == {}
        assert c.outputs == ["a"]

    def test_and_with_const0_is_const0(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate(GateFn.AND, ["a", CONST0], "y", name="g")
        c.add_output("y")
        propagate_constants(c)
        assert c.outputs == [CONST0]

    def test_constants_flow_through_chain(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate(GateFn.OR, ["a", CONST1], "n1", name="g1")  # = 1
        c.add_gate(GateFn.XOR, ["n1", "a"], "n2", name="g2")  # = NOT a
        c.add_output("n2")
        before = c.clone()
        propagate_constants(c)
        check_circuit(c)
        assert len(c.gates) == 1
        assert outputs_equal(before, c, ["a"])

    def test_xor_self_not_folded_without_sharing(self):
        # XOR(a, a) = 0 is not visible to constant propagation (the pin
        # nets are equal but non-constant); it IS a constant gate though
        c = Circuit()
        c.add_input("a")
        g = c.add_gate(GateFn.XOR, ["a", "a"], "y", name="g")
        c.add_output("y")
        # truth table of XOR is not constant; the pass leaves it alone
        propagate_constants(c)
        assert "g" in c.gates


class TestBuffersAndSharing:
    def test_double_inverter_collapses(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate(GateFn.NOT, ["a"], "n1", name="i1")
        c.add_gate(GateFn.NOT, ["n1"], "n2", name="i2")
        c.add_gate(GateFn.AND, ["n2", "a"], "y", name="g")
        c.add_output("y")
        before = c.clone()
        optimize(c)
        check_circuit(c)
        assert len(c.gates) == 1  # only the AND remains
        assert outputs_equal(before, c, ["a"])

    def test_share_identical_gates(self):
        c = Circuit()
        c.add_input("a")
        c.add_input("b")
        c.add_gate(GateFn.AND, ["a", "b"], "n1", name="g1")
        c.add_gate(GateFn.AND, ["a", "b"], "n2", name="g2")
        c.add_gate(GateFn.OR, ["n1", "n2"], "y", name="g3")
        c.add_output("y")
        n = share_structural(c)
        assert n == 1
        check_circuit(c)
        assert len(c.gates) == 2

    def test_sharing_cascades(self):
        c = Circuit()
        c.add_input("a")
        c.add_input("b")
        c.add_gate(GateFn.AND, ["a", "b"], "n1", name="g1")
        c.add_gate(GateFn.AND, ["a", "b"], "n2", name="g2")
        c.add_gate(GateFn.NOT, ["n1"], "m1", name="h1")
        c.add_gate(GateFn.NOT, ["n2"], "m2", name="h2")
        c.add_gate(GateFn.OR, ["m1", "m2"], "y", name="g3")
        c.add_output("y")
        optimize(c)
        assert len(c.gates) == 3  # AND, NOT, OR


class TestSweep:
    def test_dead_gate_removed(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate(GateFn.NOT, ["a"], "dead", name="g1")
        c.add_gate(GateFn.BUF, ["a"], "y", name="g2")
        c.add_output("y")
        assert sweep_dead(c) == 1
        assert "g1" not in c.gates

    def test_dead_register_chain_removed(self):
        c = Circuit()
        c.add_input("clk")
        c.add_input("a")
        c.add_register(d="a", q="q1", clk="clk", name="r1")
        c.add_register(d="q1", q="q2", clk="clk", name="r2")
        c.add_output("a")
        assert sweep_dead(c) == 2
        assert c.registers == {}

    def test_control_cone_stays_alive(self):
        c = Circuit()
        c.add_input("clk")
        c.add_input("a")
        c.add_input("e")
        en = c.add_gate(GateFn.NOT, ["e"], "en", name="gen").output
        c.add_register(d="a", q="q", clk="clk", en=en, name="r")
        c.add_output("q")
        assert sweep_dead(c) == 0
        assert "gen" in c.gates

    def test_dead_sequential_ring_removed(self):
        c = Circuit()
        c.add_input("clk")
        c.add_input("a")
        c.add_gate(GateFn.NOT, ["q"], "d", name="loop")
        c.add_register(d="d", q="q", clk="clk", name="r")
        c.add_output("a")
        sweep_dead(c)
        assert c.registers == {} and c.gates == {}


class TestOptimize:
    def test_fixed_point_idempotent(self):
        c = Circuit()
        c.add_input("a")
        c.add_input("b")
        c.add_gate(GateFn.AND, ["a", CONST1], "n1", name="g1")
        c.add_gate(GateFn.AND, ["n1", "b"], "y", name="g2")
        c.add_gate(GateFn.NOT, ["y"], "dead", name="g3")
        c.add_output("y")
        before = c.clone()
        assert optimize(c) > 0
        assert optimize(c) == 0
        check_circuit(c)
        assert outputs_equal(before, c, ["a", "b"])


class TestRegisterRingProtection:
    def test_buffer_anchoring_a_loop_is_kept(self):
        """A buffer that is the only combinational cell on a sequential
        loop must survive collapsing (bypassing it would create a pure
        register ring the retiming graph rejects)."""
        from repro.graph import build_mcgraph

        c = Circuit()
        c.add_input("clk")
        c.add_register(d="b", q="q", clk="clk", name="r")
        c.add_gate(GateFn.BUF, ["q"], "b", name="buf")
        c.add_output("q")
        assert collapse_buffers(c) == 0
        assert "buf" in c.gates
        build_mcgraph(c)  # still representable

    def test_two_register_ring_protected(self):
        c = Circuit()
        c.add_input("clk")
        c.add_register(d="q2", q="q1", clk="clk", name="r1")
        c.add_register(d="b", q="q2", clk="clk", name="r2")
        c.add_gate(GateFn.BUF, ["q1"], "b", name="buf")
        c.add_output("q2")
        assert collapse_buffers(c) == 0
        assert "buf" in c.gates

    def test_harmless_buffer_between_registers_collapses(self):
        """A buffer between two registers NOT on a common loop is fair
        game."""
        c = Circuit()
        c.add_input("clk")
        c.add_input("a")
        c.add_register(d="a", q="q1", clk="clk", name="r1")
        c.add_gate(GateFn.BUF, ["q1"], "b", name="buf")
        c.add_register(d="b", q="q2", clk="clk", name="r2")
        c.add_output("q2")
        assert collapse_buffers(c) == 1
        assert c.registers["r2"].d == "q1"
