"""Tests for BDD sweeping (semantic duplicate merging)."""

import itertools

from repro.logic.simulate import eval_nets
from repro.logic.ternary import T0, T1
from repro.netlist import Circuit, GateFn, check_circuit
from repro.opt import sweep_equivalent_gates
from tests.opt.test_passes import outputs_equal


class TestBddSweep:
    def test_merges_structurally_different_equivalents(self):
        c = Circuit()
        c.add_input("a")
        c.add_input("b")
        # AND(a,b) vs NOR(~a,~b): same function, different structure
        c.add_gate(GateFn.AND, ["a", "b"], "x", name="g1")
        c.add_gate(GateFn.NOT, ["a"], "na", name="i1")
        c.add_gate(GateFn.NOT, ["b"], "nb", name="i2")
        c.add_gate(GateFn.NOR, ["na", "nb"], "y", name="g2")
        c.add_gate(GateFn.OR, ["x", "y"], "out", name="g3")
        c.add_output("out")
        before = c.clone()
        merged = sweep_equivalent_gates(c)
        # g2 merges into g1; then g3 = OR(x, x) is equivalent to x and
        # merges as well -- the sweep cascades
        assert merged == 2
        check_circuit(c)
        assert outputs_equal(before, c, ["a", "b"])
        assert "g2" not in c.gates and "g3" not in c.gates
        assert c.outputs == ["x"]

    def test_constant_functions_folded(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate(GateFn.NOT, ["a"], "na", name="i")
        c.add_gate(GateFn.OR, ["a", "na"], "taut", name="g1")  # == 1
        c.add_gate(GateFn.AND, ["taut", "a"], "y", name="g2")
        c.add_output("y")
        before = c.clone()
        merged = sweep_equivalent_gates(c)
        assert merged >= 1
        assert outputs_equal(before, c, ["a"])

    def test_registers_cut_the_cones(self):
        """Gates behind different registers are never merged, even if
        their local functions look alike."""
        c = Circuit()
        for n in ("clk", "a"):
            c.add_input(n)
        c.add_register(d="a", q="q1", clk="clk", name="r1")
        c.add_register(d="a", q="q2", clk="clk", name="r2")
        c.add_gate(GateFn.NOT, ["q1"], "y1", name="g1")
        c.add_gate(GateFn.NOT, ["q2"], "y2", name="g2")
        c.add_output("y1")
        c.add_output("y2")
        assert sweep_equivalent_gates(c) == 0

    def test_budget_stops_gracefully(self):
        c = Circuit()
        nets = [c.add_input(f"i{k}") for k in range(8)]
        prev = nets[0]
        for k in range(20):
            prev = c.add_gate(GateFn.XOR, [prev, nets[(k + 1) % 8]]).output
        c.add_output(prev)
        before = c.clone()
        sweep_equivalent_gates(c, node_budget=10)
        check_circuit(c)
        assert outputs_equal(before, c, list(c.inputs))

    def test_idempotent(self):
        c = Circuit()
        c.add_input("a")
        c.add_input("b")
        c.add_gate(GateFn.AND, ["a", "b"], "x", name="g1")
        c.add_gate(GateFn.AND, ["b", "a"], "y", name="g2")  # commuted
        c.add_gate(GateFn.XOR, ["x", "y"], "z", name="g3")  # == 0 after merge
        c.add_output("z")
        first = sweep_equivalent_gates(c)
        assert first >= 1
        second = sweep_equivalent_gates(c)
        assert second <= first
