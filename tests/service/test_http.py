"""HTTP API integration: server routes, client, error handling."""

import json
import threading
import urllib.request
from pathlib import Path

import pytest

from repro.service import (
    RetimeClient,
    RetimeService,
    ServiceError,
    make_server,
)

DATA = Path(__file__).resolve().parent.parent / "data"


@pytest.fixture(scope="module")
def server():
    service = RetimeService(workers=2, job_timeout=120.0)
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    client = RetimeClient(f"http://127.0.0.1:{httpd.server_address[1]}")
    yield client
    httpd.shutdown()
    httpd.server_close()
    service.close()


class TestRoutes:
    def test_healthz(self, server):
        health = server.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert set(health["jobs"]) >= {"queued", "running", "done", "failed"}

    def test_retime_blocking(self, server):
        text = (DATA / "c2_small_mapped.blif").read_text()
        record = server.retime(text, name="c2_small_mapped")
        assert record["state"] == "done"
        result = record["result"]
        assert result["status"] == "done"
        assert result["output"].startswith(".model")
        assert result["metrics"]["final"]["n_ff"] > 0

    def test_submit_then_poll(self, server):
        text = (DATA / "c3_small_mapped.blif").read_text()
        record = server.submit(text, name="c3_small_mapped")
        assert "job_id" in record
        final = server.wait(record["job_id"], timeout=120)
        assert final["state"] == "done"

    def test_resubmission_is_cache_hit(self, server):
        text = (DATA / "c2_small_mapped.blif").read_text()
        server.retime(text, name="c2_small_mapped")
        record = server.retime(text, name="c2_small_mapped")
        assert record["result"]["cached"] is True

    def test_metrics_exposition(self, server):
        text = server.metrics_text()
        assert "# TYPE repro_jobs_submitted_total counter" in text
        assert "repro_job_latency_seconds_bucket" in text

    def test_transform_job_over_http(self, server):
        text = (DATA / "c2_small_mapped.blif").read_text()
        record = server.retime(text, transform="cslow", factor=2)
        assert record["state"] == "done"
        transform = record["result"]["metrics"]["transform"]
        assert transform["kind"] == "cslow" and transform["factor"] == 2

    def test_bad_transform_factor_is_400(self, server):
        with pytest.raises(ServiceError) as info:
            server.retime("text", transform="cslow", factor=0)
        assert info.value.status == 400

    def test_job_options_rejected_cleanly(self, server):
        with pytest.raises(ServiceError) as info:
            server.retime("text", flow="bogus")
        assert info.value.status == 400

    def test_unparsable_netlist_is_400(self, server):
        with pytest.raises(ServiceError) as info:
            server.retime(".model x\nnot blif at all\n")
        assert info.value.status == 400

    def test_unknown_job_is_404(self, server):
        with pytest.raises(ServiceError) as info:
            server.job("deadbeef")
        assert info.value.status == 404

    def test_unknown_route_is_404(self, server):
        with pytest.raises(ServiceError) as info:
            server._request("GET", "/nope")
        assert info.value.status == 404

    def test_malformed_json_body_is_400(self, server):
        req = urllib.request.Request(
            server.base_url + "/retime",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(req, timeout=30)
        assert info.value.code == 400
        assert "error" in json.loads(info.value.read())


class TestObservabilityRoutes:
    def test_build_info_and_uptime_on_metrics(self, server):
        text = server.metrics_text()
        assert "# TYPE repro_build_info gauge" in text
        assert 'repro_build_info{' in text and 'git_sha="' in text
        assert "# TYPE repro_process_uptime_seconds gauge" in text
        uptime = [
            line
            for line in text.splitlines()
            if line.startswith("repro_process_uptime_seconds ")
        ]
        assert uptime and float(uptime[0].split()[-1]) > 0

    def test_runs_404_without_ledger(self, server):
        with pytest.raises(ServiceError) as info:
            server._request("GET", "/runs")
        assert info.value.status == 404

    def test_profile_bad_params_400(self, server):
        for query in ("seconds=0", "seconds=bogus", "seconds=9999"):
            with pytest.raises(ServiceError) as info:
                server._request("GET", f"/debug/profile?{query}")
            assert info.value.status == 400


@pytest.fixture()
def ledger_server(tmp_path):
    service = RetimeService(
        workers=2, job_timeout=120.0, ledger=tmp_path / "runs.jsonl"
    )
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    client = RetimeClient(f"http://127.0.0.1:{httpd.server_address[1]}")
    yield client, service
    httpd.shutdown()
    httpd.server_close()
    service.close()


class TestRunsAndProfile:
    def test_runs_tail_after_job(self, ledger_server):
        client, service = ledger_server
        text = (DATA / "c2_small_mapped.blif").read_text()
        record = client.retime(text, name="c2_small_mapped")
        assert record["state"] == "done"
        body = client._request("GET", "/runs?n=10")
        assert len(body["runs"]) == 1
        run = body["runs"][0]
        assert run["kind"] == "service.job"
        assert run["run_id"] == record["job_id"][:16]
        assert run["fingerprint"] == record["job_id"]
        assert run["spans"], "worker span totals missing from ledger record"
        assert run["config"]["flow"] == "mcretime"
        assert run["metrics"]["elapsed"] > 0

    def test_span_exemplars_name_the_job(self, ledger_server):
        client, _service = ledger_server
        text = (DATA / "c2_small_mapped.blif").read_text()
        record = client.retime(text, name="c2_small_mapped")
        run_id = record["job_id"][:16]
        exemplars = [
            line
            for line in client.metrics_text().splitlines()
            if line.startswith("repro_span_seconds_bucket") and " # {" in line
        ]
        assert exemplars
        assert all(f'run="{run_id}"' in line for line in exemplars)

    def test_debug_profile_speedscope(self, ledger_server):
        client, _service = ledger_server
        scope = client._request("GET", "/debug/profile?seconds=0.2&interval=0.01")
        assert scope["$schema"].startswith("https://www.speedscope.app")
        assert scope["profiles"][0]["type"] == "sampled"
