"""Unit tests for the two-tier result cache."""

import json
import os
import threading

from repro.service import JobFailure, JobResult, ResultCache


def _result(job_id="k", output="netlist"):
    return JobResult(job_id=job_id, status="done", output=output)


class TestMemoryTier:
    def test_put_get(self):
        cache = ResultCache()
        cache.put("k", _result())
        hit = cache.get("k")
        assert hit is not None and hit.output == "netlist"
        assert cache.memory_hits == 1

    def test_miss(self):
        cache = ResultCache()
        assert cache.get("absent") is None
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = ResultCache(memory_size=2)
        for key in ("a", "b", "c"):
            cache.put(key, _result(job_id=key))
        assert cache.get("a") is None  # evicted, no disk tier
        assert cache.get("c") is not None

    def test_lru_touch_on_get(self):
        cache = ResultCache(memory_size=2)
        cache.put("a", _result(job_id="a"))
        cache.put("b", _result(job_id="b"))
        cache.get("a")  # refresh a; c should evict b instead
        cache.put("c", _result(job_id="c"))
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_failures_not_cached(self):
        cache = ResultCache()
        cache.put(
            "k",
            JobResult(
                job_id="k",
                status="failed",
                error=JobFailure(type="timeout", message="slow"),
            ),
        )
        assert cache.get("k") is None


class TestDiskTier:
    def test_survives_new_instance(self, tmp_path):
        ResultCache(tmp_path).put("k", _result())
        fresh = ResultCache(tmp_path)
        hit = fresh.get("k")
        assert hit is not None and hit.output == "netlist"
        assert fresh.disk_hits == 1

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        ResultCache(tmp_path).put("k", _result())
        fresh = ResultCache(tmp_path)
        fresh.get("k")
        fresh.get("k")
        assert fresh.disk_hits == 1 and fresh.memory_hits == 1

    def test_torn_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "bad.json").write_text("{truncated")
        assert cache.get("bad") is None

    def test_corrupt_entry_quarantined_after_first_miss(self, tmp_path):
        """A corrupt disk entry is renamed aside on the first decode
        failure, so later lookups never re-read the bad bytes."""
        cache = ResultCache(tmp_path)
        (tmp_path / "bad.json").write_text("{truncated")
        assert cache.get("bad") is None
        assert cache.corrupt == 1
        assert not (tmp_path / "bad.json").exists()
        assert (tmp_path / "bad.json.corrupt").exists()
        # second miss goes straight through: nothing left to quarantine
        assert cache.get("bad") is None
        assert cache.corrupt == 1
        # a fresh result under the same key is cacheable again
        cache.put("bad", _result(job_id="bad"))
        fresh = ResultCache(tmp_path)
        assert fresh.get("bad") is not None

    def test_non_object_entry_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "odd.json").write_text("[1, 2, 3]")
        assert cache.get("odd") is None
        assert cache.corrupt == 1
        assert (tmp_path / "odd.json.corrupt").exists()

    def test_missing_entry_is_not_corrupt(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("absent") is None
        assert cache.corrupt == 0

    def test_stale_tmp_swept_on_construction(self, tmp_path):
        """A writer hard-killed between temp write and rename leaks a
        ``.tmp`` file; construction sweeps it."""
        stale = tmp_path / ".k.json.12345.67890.tmp"
        stale.write_text('{"partial": true')
        cache = ResultCache(tmp_path)
        assert not stale.exists()
        # sweeping never touches real entries
        cache.put("k", _result())
        assert ResultCache(tmp_path).get("k") is not None

    def test_stale_tmp_swept_on_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", _result())
        stale = tmp_path / ".other.json.999.888.tmp"
        stale.write_text("junk")
        (tmp_path / "dead.json.corrupt").write_text("junk")
        cache.clear()
        assert not stale.exists()
        assert list(tmp_path.glob("*")) == []

    def test_contains_len_clear(self, tmp_path):
        cache = ResultCache(tmp_path, memory_size=1)
        cache.put("a", _result(job_id="a"))
        cache.put("b", _result(job_id="b"))  # a evicted from memory only
        assert "a" in cache and "b" in cache
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0 and "a" not in cache


class TestConcurrentAccess:
    def test_reput_skips_disk_write(self, tmp_path, monkeypatch):
        """Content-addressed entries are written to disk exactly once."""
        writes = []
        real_replace = os.replace
        monkeypatch.setattr(
            "repro.service.cache.os.replace",
            lambda src, dst: (writes.append(dst), real_replace(src, dst)),
        )
        cache = ResultCache(tmp_path)
        cache.put("k", _result())
        cache.put("k", _result())
        cache.put("k", _result())
        assert len(writes) == 1

    def test_parallel_writers_and_readers_no_corruption(self, tmp_path):
        """8 threads hammering overlapping keys: every entry stays whole."""
        cache = ResultCache(tmp_path, memory_size=4)
        keys = [f"key-{i}" for i in range(16)]
        errors = []

        def hammer(seed):
            try:
                for round_no in range(30):
                    key = keys[(seed + round_no) % len(keys)]
                    cache.put(key, _result(job_id=key, output=f"net-{key}"))
                    hit = cache.get(key)
                    if hit is not None and hit.output != f"net-{key}":
                        errors.append((key, hit.output))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # one well-formed disk entry per key, no leftover temp files
        assert sorted(p.stem for p in tmp_path.glob("*.json")) == sorted(keys)
        assert list(tmp_path.glob("*.tmp")) == []
        assert list(tmp_path.glob(".*.tmp")) == []
        for path in tmp_path.glob("*.json"):
            data = json.loads(path.read_text())
            assert data["output"] == f"net-{path.stem}"
        fresh = ResultCache(tmp_path)
        for key in keys:
            hit = fresh.get(key)
            assert hit is not None and hit.output == f"net-{key}"
