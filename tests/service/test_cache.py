"""Unit tests for the two-tier result cache."""

from repro.service import JobFailure, JobResult, ResultCache


def _result(job_id="k", output="netlist"):
    return JobResult(job_id=job_id, status="done", output=output)


class TestMemoryTier:
    def test_put_get(self):
        cache = ResultCache()
        cache.put("k", _result())
        hit = cache.get("k")
        assert hit is not None and hit.output == "netlist"
        assert cache.memory_hits == 1

    def test_miss(self):
        cache = ResultCache()
        assert cache.get("absent") is None
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = ResultCache(memory_size=2)
        for key in ("a", "b", "c"):
            cache.put(key, _result(job_id=key))
        assert cache.get("a") is None  # evicted, no disk tier
        assert cache.get("c") is not None

    def test_lru_touch_on_get(self):
        cache = ResultCache(memory_size=2)
        cache.put("a", _result(job_id="a"))
        cache.put("b", _result(job_id="b"))
        cache.get("a")  # refresh a; c should evict b instead
        cache.put("c", _result(job_id="c"))
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_failures_not_cached(self):
        cache = ResultCache()
        cache.put(
            "k",
            JobResult(
                job_id="k",
                status="failed",
                error=JobFailure(type="timeout", message="slow"),
            ),
        )
        assert cache.get("k") is None


class TestDiskTier:
    def test_survives_new_instance(self, tmp_path):
        ResultCache(tmp_path).put("k", _result())
        fresh = ResultCache(tmp_path)
        hit = fresh.get("k")
        assert hit is not None and hit.output == "netlist"
        assert fresh.disk_hits == 1

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        ResultCache(tmp_path).put("k", _result())
        fresh = ResultCache(tmp_path)
        fresh.get("k")
        fresh.get("k")
        assert fresh.disk_hits == 1 and fresh.memory_hits == 1

    def test_torn_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "bad.json").write_text("{truncated")
        assert cache.get("bad") is None

    def test_contains_len_clear(self, tmp_path):
        cache = ResultCache(tmp_path, memory_size=1)
        cache.put("a", _result(job_id="a"))
        cache.put("b", _result(job_id="b"))  # a evicted from memory only
        assert "a" in cache and "b" in cache
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0 and "a" not in cache
