"""Integration tests: pool fan-out, crash/timeout recovery, caching.

These run real worker processes.  Timeouts and backoffs are tuned small
so the failure-path tests finish in a couple of seconds.
"""

from pathlib import Path

import pytest

from repro.mcretime import mc_retime
from repro.netlist import read_blif, write_blif
from repro.service import RetimeJob, RetimeService
from repro.timing import UNIT_DELAY

DATA = Path(__file__).resolve().parent.parent / "data"
DESIGNS = ["c2_small", "c3_small"]


@pytest.fixture(scope="module")
def service():
    svc = RetimeService(workers=2, job_timeout=120.0, max_retries=1,
                        retry_backoff=0.05)
    yield svc
    svc.close()


class TestBatchFanOut:
    def test_batch_matches_serial_byte_for_byte(self, service):
        """Fanned-out jobs produce exactly what serial mc_retime does."""
        jobs = [
            RetimeJob.from_file(DATA / f"{name}.blif") for name in DESIGNS
        ]
        results = service.batch(jobs)
        for name, result in zip(DESIGNS, results):
            assert result.ok, result.error
            serial = mc_retime(
                read_blif((DATA / f"{name}.blif").read_text(), name_hint=name),
                delay_model=UNIT_DELAY,
            )
            assert result.output == write_blif(serial.circuit)

    def test_results_preserve_submission_order(self, service):
        jobs = [
            RetimeJob.from_file(DATA / f"{name}_mapped.blif")
            for name in DESIGNS
        ]
        results = service.batch(jobs)
        assert [r.job_id for r in results] == [j.canonical_key for j in jobs]


class TestCrashIsolation:
    def test_crash_retries_then_fails_structured(self, service):
        crash = RetimeJob.from_file(DATA / "c2_small.blif", flow="__crash__")
        result = service.batch([crash])[0]
        assert not result.ok
        assert result.error.type == "worker_crash"
        assert "exit code" in result.error.message
        # 1 initial attempt + max_retries=1 retry
        assert result.attempts == 2

    def test_pool_survives_crashes(self, service):
        """A crashed worker is respawned; later jobs still complete."""
        crash = RetimeJob.from_file(DATA / "c3_small.blif", flow="__crash__")
        ok_job = RetimeJob.from_file(
            DATA / "c3_small_mapped.blif", delay_model="xc4000e"
        )
        crash_result, ok_result = service.batch([crash, ok_job])
        assert not crash_result.ok
        assert ok_result.ok

    def test_deterministic_error_fails_without_retry(self, service):
        # parses fine but violates a structural invariant in the worker
        bad = RetimeJob(
            netlist=".model bad\n.inputs a\n.outputs y\n"
            ".names a miss y\n11 1\n.end\n"
        )
        result = service.batch([bad])[0]
        assert not result.ok
        assert result.error.type == "NetlistError"
        assert result.attempts == 1  # no retry for deterministic errors


class TestTimeouts:
    def test_hang_times_out_then_fails(self):
        svc = RetimeService(
            workers=1, job_timeout=0.4, max_retries=1, retry_backoff=0.05
        )
        try:
            hang = RetimeJob.from_file(DATA / "c2_small.blif", flow="__hang__")
            result = svc.batch([hang], timeout=30)[0]
            assert not result.ok
            assert result.error.type == "timeout"
            assert result.attempts == 2
            assert svc.metrics.counter("repro_jobs_timeout_total").total() == 2
        finally:
            svc.close()


class TestCaching:
    def test_identical_resubmission_does_zero_work(self, tmp_path):
        svc = RetimeService(workers=2, cache_dir=tmp_path)
        try:
            job = RetimeJob.from_file(DATA / "c2_small_mapped.blif")
            first = svc.batch([job])[0]
            assert first.ok and not first.cached
            completed = svc.metrics.counter("repro_jobs_completed_total")
            assert completed.total() == 1

            second = svc.batch([job])[0]
            assert second.cached
            assert second.output == first.output
            # no additional execution happened anywhere in the pool
            assert completed.total() == 1
            assert svc.metrics.counter("repro_cache_hits_total").total() == 1
        finally:
            svc.close()

    def test_disk_cache_survives_service_restart(self, tmp_path):
        job = RetimeJob.from_file(DATA / "c3_small_mapped.blif")
        svc1 = RetimeService(workers=1, cache_dir=tmp_path)
        try:
            first = svc1.batch([job])[0]
        finally:
            svc1.close()

        svc2 = RetimeService(workers=1, cache_dir=tmp_path)
        try:
            hit = svc2.batch([job])[0]
            assert hit.cached
            assert hit.output == first.output
            assert (
                svc2.metrics.counter("repro_jobs_completed_total").total() == 0
            )
        finally:
            svc2.close()

    def test_warm_rerun_hit_rate_above_90_percent(self, tmp_path):
        """The acceptance criterion: warm rerun >90% cache hits."""
        jobs = [
            RetimeJob.from_file(DATA / f"{name}{suffix}.blif")
            for name in DESIGNS
            for suffix in ("", "_mapped")
        ]
        svc1 = RetimeService(workers=2, cache_dir=tmp_path)
        try:
            assert all(r.ok for r in svc1.batch(jobs))
        finally:
            svc1.close()
        svc2 = RetimeService(workers=2, cache_dir=tmp_path)
        try:
            rerun = svc2.batch(jobs)
            assert all(r.cached for r in rerun)
            assert svc2.cache_hit_rate() > 0.9
        finally:
            svc2.close()


class TestStatusTracking:
    def test_status_and_counts(self, service):
        job = RetimeJob.from_file(DATA / "c2_small_mapped.blif",
                                  objective="minperiod")
        job_id = service.submit(job)
        service.wait(job_id, timeout=60)
        record = service.status(job_id)
        assert record["state"] == "done"
        assert record["result"]["output"].startswith(".model")
        assert service.status("unknown-id") is None
        counts = service.job_counts()
        assert counts["done"] >= 1

    def test_stage_latency_histograms_populated(self, service):
        hist = service.metrics.histogram("repro_stage_seconds")
        # the module-scoped service has retimed several designs by now
        assert hist.count(stage="minperiod") > 0
        assert hist.percentile(95, stage="minperiod") >= 0.0
