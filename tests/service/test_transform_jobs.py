"""Service-layer tests for transform jobs: cache-key isolation between
transform configs, validation, round-trips, and execution."""

import pytest

from repro.netlist import write_blif
from repro.service import JOB_TRANSFORMS, RetimeJob, execute_job
from repro.service.server import job_from_request
from repro.synth import build_datapath

TINY = """\
.model tiny
.inputs clk a b
.outputs y
.names a b n1
11 1
.names n1 q1 y
10 1
01 1
.latch n1 q1 re clk 0
.end
"""


class TestTransformKeys:
    def test_distinct_transform_configs_never_collide(self):
        # the cache-correctness property from the ISSUE: every distinct
        # (transform, knob) combination must key differently
        jobs = [
            RetimeJob(netlist=TINY),
            RetimeJob(netlist=TINY, transform="pipeline"),
            RetimeJob(netlist=TINY, transform="pipeline", stages=2),
            RetimeJob(netlist=TINY, transform="cslow"),
            RetimeJob(netlist=TINY, transform="cslow", factor=3),
        ]
        keys = {job.canonical_key for job in jobs}
        assert len(keys) == len(jobs)

    def test_unused_knob_does_not_change_key(self):
        # `stages` is a pipeline knob: on a cslow job it must be nulled
        # out of the key (and vice versa), or caches would miss
        a = RetimeJob(netlist=TINY, transform="cslow", factor=2, stages=1)
        b = RetimeJob(netlist=TINY, transform="cslow", factor=2, stages=7)
        assert a.canonical_key == b.canonical_key
        c = RetimeJob(netlist=TINY, transform="pipeline", stages=2, factor=2)
        d = RetimeJob(netlist=TINY, transform="pipeline", stages=2, factor=9)
        assert c.canonical_key == d.canonical_key

    def test_round_trip_preserves_key(self):
        job = RetimeJob(
            netlist=TINY, flow="mcretime", transform="cslow", factor=3
        )
        again = RetimeJob.from_dict(job.to_dict())
        assert again.canonical_key == job.canonical_key
        assert again.transform == "cslow" and again.factor == 3


class TestTransformValidation:
    def test_job_transforms_exported(self):
        assert JOB_TRANSFORMS == ("pipeline", "cslow")

    def test_unknown_transform_rejected(self):
        with pytest.raises(ValueError):
            RetimeJob(netlist=TINY, transform="unroll")

    def test_transform_requires_compatible_flow(self):
        with pytest.raises(ValueError):
            RetimeJob(netlist=TINY, flow="baseline", transform="pipeline")

    def test_bad_stage_and_factor_values(self):
        with pytest.raises(ValueError):
            RetimeJob(netlist=TINY, transform="pipeline", stages=-1)
        with pytest.raises(ValueError):
            RetimeJob(netlist=TINY, transform="cslow", factor=0)


class TestHTTPRequestParsing:
    def test_transform_fields_reach_the_job(self):
        # regression: the POST /retime field allowlist must include the
        # transform knobs, or the server silently runs a plain retime
        job = job_from_request(
            {"netlist": TINY, "transform": "cslow", "factor": 3}
        )
        assert job.transform == "cslow" and job.factor == 3
        job = job_from_request(
            {"netlist": TINY, "transform": "pipeline", "stages": 2}
        )
        assert job.transform == "pipeline" and job.stages == 2

    def test_bad_transform_values_are_client_errors(self):
        with pytest.raises(ValueError):
            job_from_request(
                {"netlist": TINY, "transform": "cslow", "factor": 0}
            )


class TestTransformExecution:
    @pytest.fixture(scope="class")
    def datapath_netlist(self):
        return write_blif(build_datapath("NTT4").circuit)

    def test_engine_cslow_job(self, datapath_netlist):
        job = RetimeJob(
            netlist=datapath_netlist,
            transform="cslow",
            factor=2,
            verify=True,
            verify_cycles=16,
        )
        result = execute_job(job)
        assert result.ok, result.error
        transform = result.metrics["transform"]
        assert transform["kind"] == "cslow"
        assert transform["throughput_gain"] > 1.0
        assert result.metrics["verify"]["equivalent"]

    def test_flow_pipeline_job(self, datapath_netlist):
        job = RetimeJob(
            netlist=datapath_netlist,
            flow="retime",
            transform="pipeline",
            stages=2,
            verify=True,
            verify_cycles=16,
        )
        result = execute_job(job)
        assert result.ok, result.error
        transform = result.metrics["transform"]
        assert transform["kind"] == "pipeline" and transform["stages"] == 2
        assert result.metrics["verify"]["equivalent"]
