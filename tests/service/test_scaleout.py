"""Scale-out dispatch: shard affinity, backpressure, async HTTP front-end."""

import json
import socket
import threading
import time
from pathlib import Path

import pytest

from repro.service import (
    RetimeClient,
    RetimeJob,
    RetimePool,
    RetimeService,
    PoolSaturatedError,
    ServiceOverloadedError,
    make_server,
)

DATA = Path(__file__).resolve().parent.parent / "data"


def _job(name="c2_small_mapped", **options):
    return RetimeJob.from_file(DATA / f"{name}.blif", **options)


def _spin_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:  # pragma: no cover
            raise AssertionError("condition not reached in time")
        time.sleep(0.01)


class TestShardAffinity:
    def test_same_design_lands_on_one_shard(self):
        """A target-period sweep of one design keeps its home worker."""
        svc = RetimeService(workers=2, job_timeout=120.0)
        try:
            periods = [20.0, 21.0, 22.0, 23.0]
            jobs = [_job(target_period=p) for p in periods]
            results = svc.batch(jobs)
            assert all(r.ok for r in results)
            stats = svc.pool.stats()
            homes = {
                slot
                for slot, shard in enumerate(stats["shards"])
                if shard["dispatched"] - shard["stolen"] > 0
            }
            # every non-stolen dispatch of this design went to one home
            assert len(homes) == 1
        finally:
            svc.close()

    def test_pool_shard_for_is_stable(self):
        pool = RetimePool(workers=4)
        keys = [f"fp-{i}" for i in range(64)]
        want = [pool.shard_for(k) for k in keys]
        again = RetimePool(workers=4)
        assert [again.shard_for(k) for k in keys] == want
        assert len(set(want)) > 1  # actually spreads


class TestBackpressure:
    def test_pool_submit_raises_when_full(self):
        pool = RetimePool(workers=1, job_timeout=5.0, max_pending=1).start()
        try:
            pool.submit("h1", _job(flow="__hang__"))
            _spin_until(lambda: pool.queue_depth() == 0)  # h1 dispatched
            pool.submit("h2", _job("c3_small", flow="__hang__"))
            with pytest.raises(PoolSaturatedError) as info:
                pool.submit("h3", _job("c3_small_mapped", flow="__hang__"))
            assert info.value.pending == 1 and info.value.limit == 1
        finally:
            pool.close()

    def test_service_sheds_with_typed_error_and_metrics(self):
        svc = RetimeService(workers=1, job_timeout=2.0, max_retries=0,
                            max_pending=1)
        try:
            svc.submit(_job(flow="__hang__"))
            _spin_until(lambda: svc.pool.queue_depth() == 0)
            svc.submit(_job("c3_small", flow="__hang__"))
            shed = _job("c3_small_mapped", flow="__hang__")
            with pytest.raises(ServiceOverloadedError) as info:
                svc.submit(shed)
            assert info.value.status == 429
            assert info.value.retry_after >= 1
            assert svc.metrics.counter("repro_jobs_shed_total").total() == 1
            # a shed job leaves no ghost record behind
            assert svc.status(shed.canonical_key) is None
        finally:
            svc.close()

    def test_shed_surfaces_as_429_through_http_client(self):
        svc = RetimeService(workers=1, job_timeout=2.0, max_retries=0,
                            max_pending=1)
        httpd = make_server(svc, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        client = RetimeClient(f"http://127.0.0.1:{httpd.server_address[1]}")
        try:
            client.submit((DATA / "c2_small.blif").read_text(), flow="__hang__")
            _spin_until(lambda: svc.pool.queue_depth() == 0)
            client.submit((DATA / "c3_small.blif").read_text(), flow="__hang__")
            with pytest.raises(ServiceOverloadedError) as info:
                client.submit(
                    (DATA / "c2_small_mapped.blif").read_text(),
                    flow="__hang__",
                )
            assert info.value.status == 429
            assert info.value.retry_after >= 1
        finally:
            client.close()
            httpd.shutdown()
            httpd.server_close()
            svc.close()


@pytest.fixture(scope="module")
def async_server():
    service = RetimeService(workers=1, job_timeout=120.0)
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd.server_address[1]
    httpd.shutdown()
    httpd.server_close()
    service.close()


class TestAsyncFrontEnd:
    def test_keep_alive_reuses_one_connection(self, async_server):
        client = RetimeClient(f"http://127.0.0.1:{async_server}")
        try:
            client.healthz()
            sock_before = client._conn.sock
            assert sock_before is not None
            client.healthz()
            client.metrics_text()
            assert client._conn.sock is sock_before
        finally:
            client.close()

    def test_pipelined_requests_on_one_socket(self, async_server):
        """Two requests written back-to-back get two in-order responses."""
        request = (
            "GET /healthz HTTP/1.1\r\n"
            f"Host: 127.0.0.1:{async_server}\r\n"
            "\r\n"
        )
        with socket.create_connection(("127.0.0.1", async_server), 10) as sock:
            sock.sendall((request + request).encode())
            sock.settimeout(10)
            data = b""
            deadline = time.monotonic() + 10
            while data.count(b'"status": "ok"') < 2:
                if time.monotonic() > deadline:  # pragma: no cover
                    raise AssertionError(f"pipelined responses missing: {data!r}")
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        # two complete, parseable responses arrived in order
        head, _, rest = data.partition(b"\r\n")
        assert head == b"HTTP/1.1 200 OK"
        assert data.count(b"HTTP/1.1 200 OK") == 2

    def test_connection_close_is_honored(self, async_server):
        with socket.create_connection(("127.0.0.1", async_server), 10) as sock:
            sock.sendall(
                (
                    "GET /healthz HTTP/1.1\r\n"
                    f"Host: x\r\nConnection: close\r\n\r\n"
                ).encode()
            )
            sock.settimeout(10)
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        assert b"HTTP/1.1 200 OK" in data
        assert b'"status": "ok"' in data

    def test_stale_client_connection_retries_transparently(self, async_server):
        client = RetimeClient(f"http://127.0.0.1:{async_server}")
        try:
            client.healthz()
            # simulate a server-side idle drop between requests
            client._conn.sock.close()
            assert client.healthz()["status"] == "ok"
        finally:
            client.close()

    def test_runs_streams_chunked(self, async_server):
        # /runs without a ledger 404s; exercise chunked framing on a
        # streaming-capable route via raw HTTP to see the wire format
        with socket.create_connection(("127.0.0.1", async_server), 10) as sock:
            sock.sendall(
                (
                    "GET /metrics HTTP/1.1\r\n"
                    f"Host: x\r\nConnection: close\r\n\r\n"
                ).encode()
            )
            sock.settimeout(10)
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        assert b"repro_jobs_submitted_total" in data
