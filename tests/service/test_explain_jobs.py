"""Explain-enabled jobs: spec, keys, execution, serving, metrics."""

import threading
from pathlib import Path

import pytest

from repro.service import (
    RetimeClient,
    RetimeJob,
    RetimeService,
    ServiceError,
    execute_job,
    make_server,
)

DATA = Path(__file__).resolve().parent.parent / "data"


def netlist():
    return (DATA / "c2_small_mapped.blif").read_text()


class TestJobSpec:
    def test_default_off_and_keyed(self):
        job = RetimeJob(netlist=netlist())
        assert job.explain is False
        assert job.options()["explain"] is False

    def test_explain_changes_canonical_key(self):
        text = netlist()
        plain = RetimeJob(netlist=text)
        explained = RetimeJob(netlist=text, explain=True)
        assert plain.canonical_key != explained.canonical_key

    def test_non_bool_rejected(self):
        with pytest.raises(ValueError, match="explain must be a bool"):
            RetimeJob(netlist=netlist(), explain="yes")


class TestExecute:
    def test_explained_job_carries_summary_and_payload(self):
        result = execute_job(
            RetimeJob(netlist=netlist(), name="c2", explain=True)
        )
        assert result.status == "done"
        explain = result.metrics["explain"]
        summary = explain["summary"]
        assert summary["valid"] is True
        assert summary["certificates"] > 0
        payload = explain["explanation"]
        assert payload["schema"] == "repro.explain/1"
        assert payload["valid"] is True
        assert "explain" in result.metrics["timings"]

    def test_plain_job_has_no_explain_metrics(self):
        result = execute_job(RetimeJob(netlist=netlist(), name="c2"))
        assert result.status == "done"
        assert "explain" not in result.metrics
        assert "explain" not in result.metrics["timings"]

    def test_transform_job_explains_post_transform_graph(self):
        result = execute_job(
            RetimeJob(
                netlist=netlist(),
                name="c2",
                transform="pipeline",
                stages=2,
                explain=True,
            )
        )
        assert result.status == "done"
        assert result.metrics["explain"]["summary"]["valid"] is True


@pytest.fixture(scope="module")
def server():
    service = RetimeService(workers=2, job_timeout=120.0)
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    client = RetimeClient(f"http://127.0.0.1:{httpd.server_address[1]}")
    yield service, client
    httpd.shutdown()
    httpd.server_close()
    service.close()


class TestServing:
    def test_explain_round_trip(self, server):
        service, client = server
        record = client.retime(netlist(), name="c2", explain=True)
        assert record["state"] == "done"
        job_id = record["result"]["job_id"]

        served = client._request("GET", f"/explain/{job_id}")
        assert served["job_id"] == job_id
        assert served["summary"]["valid"] is True
        assert served["explanation"]["schema"] == "repro.explain/1"
        # unique prefixes resolve too (>= 8 chars)
        assert service.explanation(job_id[:16])["job_id"] == job_id

        text = client.metrics_text()
        assert "repro_explain_jobs_total" in text
        assert 'repro_explain_certificates_total{verdict="valid"}' in text

    def test_plain_job_is_404(self, server):
        service, client = server
        record = client.retime(netlist(), name="c2")
        job_id = record["result"]["job_id"]
        with pytest.raises(ServiceError) as info:
            client._request("GET", f"/explain/{job_id}")
        assert info.value.status == 404
        assert service.explanation(job_id) is None

def test_ledger_gains_explain_fields(tmp_path):
    import json

    path = tmp_path / "runs.jsonl"
    service = RetimeService(workers=1, job_timeout=120.0, ledger=path)
    try:
        job_id = service.submit(
            RetimeJob(netlist=netlist(), name="c2", explain=True)
        )
        result = service.wait(job_id, timeout=120.0)
        assert result.status == "done"
    finally:
        service.close()
    records = [json.loads(line) for line in path.read_text().splitlines()]
    job_records = [r for r in records if r.get("kind") == "service.job"]
    assert job_records
    metrics = job_records[-1]["metrics"]
    assert metrics["explain_valid"] == 1
    assert metrics["explain_certificates"] > 0
    assert "explain_binding_constraints" in metrics
