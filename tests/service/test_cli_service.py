"""CLI-level tests: ``mcretime batch``, error diagnostics, reports."""

from pathlib import Path

import pytest

from repro.flows import FlowResult
from repro.tools.cli import main

DATA = Path(__file__).resolve().parent.parent / "data"


@pytest.fixture()
def design_dir(tmp_path):
    src = tmp_path / "designs"
    src.mkdir()
    for name in ("c2_small", "c3_small"):
        (src / f"{name}.blif").write_text((DATA / f"{name}.blif").read_text())
    return src


class TestBatch:
    def test_batch_matches_serial_cli(self, design_dir, tmp_path, capsys):
        serial_dir = tmp_path / "serial"
        serial_dir.mkdir()
        for path in sorted(design_dir.iterdir()):
            assert main([str(path), "-o", str(serial_dir / path.name)]) == 0

        out_dir = tmp_path / "batch"
        assert main([
            "batch", str(design_dir), "-o", str(out_dir), "--workers", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 jobs" in out and "0 failed" in out
        for path in sorted(design_dir.iterdir()):
            assert (
                (out_dir / path.name).read_bytes()
                == (serial_dir / path.name).read_bytes()
            )

    def test_warm_cache_rerun(self, design_dir, tmp_path, capsys):
        cache = tmp_path / "cache"
        args = [
            "batch", str(design_dir), "-o", str(tmp_path / "out1"),
            "--workers", "2", "--cache-dir", str(cache),
        ]
        assert main(args) == 0
        capsys.readouterr()
        metrics_out = tmp_path / "metrics.txt"
        assert main([
            "batch", str(design_dir), "-o", str(tmp_path / "out2"),
            "--workers", "2", "--cache-dir", str(cache),
            "--metrics-out", str(metrics_out),
        ]) == 0
        out = capsys.readouterr().out
        assert "cache hit rate 100%" in out
        assert "[cached]" in out
        text = metrics_out.read_text()
        assert "repro_cache_hits_total 2" in text
        assert "repro_cache_misses_total 0" in text

    def test_batch_rejects_malformed_input_upfront(self, tmp_path, capsys):
        bad = tmp_path / "bad.blif"
        bad.write_text(".model x\ngarbage\n.end\n")
        assert main(["batch", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "mcretime: error" in err and "bad.blif" in err

    def test_batch_empty_dir(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["batch", str(empty)]) == 1
        assert "no netlists found" in capsys.readouterr().err


class TestDiagnostics:
    """Satellite: malformed inputs exit 1 with a one-line message."""

    def test_parse_error_one_line(self, tmp_path, capsys):
        bad = tmp_path / "bad.blif"
        bad.write_text(".model x\n.names a b\nnot-a-cover\n.end\n")
        assert main([str(bad)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("mcretime: error:")
        assert len(err.strip().splitlines()) == 1

    def test_missing_file_one_line(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.blif")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("mcretime: error:")
        assert "absent.blif" in err

    def test_validation_error_one_line(self, tmp_path, capsys):
        bad = tmp_path / "undriven.blif"
        bad.write_text(
            ".model x\n.inputs a\n.outputs y\n.names a miss y\n11 1\n.end\n"
        )
        assert main([str(bad)]) == 1
        err = capsys.readouterr().err
        assert "undriven" in err


class TestRejectionReport:
    """Satellite: --report surfaces accepted=False instead of silently
    printing baseline numbers."""

    def test_rejected_retiming_is_reported(self, tmp_path, capsys, monkeypatch):
        import repro.tools.cli as cli

        real_retime_flow = cli.retime_flow

        def rejecting_flow(circuit, model, **kwargs):
            flow = real_retime_flow(circuit, model, **kwargs)
            base = kwargs["mapped"]
            return FlowResult(
                circuit=base.circuit,
                n_ff=base.n_ff,
                n_lut=base.n_lut,
                delay=base.delay,
                has_async=flow.has_async,
                has_enable=flow.has_enable,
                retime=flow.retime,
                timings=flow.timings,
                accepted=False,
            )

        monkeypatch.setattr(cli, "retime_flow", rejecting_flow)
        design = tmp_path / "design.blif"
        design.write_text((DATA / "c2_small.blif").read_text())
        assert main([str(design), "--map", "--report"]) == 0
        out = capsys.readouterr().out
        assert "retiming rejected" in out
        assert "REJECTED" in out
