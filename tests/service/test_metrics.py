"""Unit tests for the Prometheus-style metrics core."""

import pytest

from repro.service import MetricsRegistry


class TestCounter:
    def test_inc_and_total(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", "help text")
        c.inc()
        c.inc(2.5)
        assert c.total() == 3.5

    def test_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total")
        c.inc(stage="map")
        c.inc(2, stage="retime")
        assert c.value(stage="map") == 1
        assert c.value(stage="retime") == 2
        assert c.total() == 3

    def test_negative_rejected(self):
        c = MetricsRegistry().counter("repro_test_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_render(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", "a counter")
        c.inc(3, kind="x")
        lines = c.render()
        assert "# HELP repro_test_total a counter" in lines
        assert "# TYPE repro_test_total counter" in lines
        assert 'repro_test_total{kind="x"} 3' in lines


class TestHistogram:
    def test_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        text = "\n".join(h.render())
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 3' in text
        assert 'repro_lat_seconds_bucket{le="10"} 4' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 5' in text
        assert "repro_lat_seconds_count 5" in text

    def test_sum_and_count(self):
        h = MetricsRegistry().histogram("repro_h")
        h.observe(1.0)
        h.observe(2.0)
        assert h.count() == 2
        assert h.sum() == pytest.approx(3.0)

    def test_percentiles(self):
        h = MetricsRegistry().histogram("repro_h")
        for i in range(1, 101):
            h.observe(float(i))
        assert h.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert h.percentile(95) == pytest.approx(95.0, abs=1.0)
        assert h.percentile(100) == 100.0

    def test_percentile_interpolates_between_samples(self):
        h = MetricsRegistry().histogram("repro_h")
        for v in (10.0, 20.0):
            h.observe(v)
        # rank (n-1)*p/100 = 0.5 for p50 with two samples
        assert h.percentile(50) == pytest.approx(15.0)
        assert h.percentile(25) == pytest.approx(12.5)
        assert h.percentile(0) == 10.0
        assert h.percentile(100) == 20.0

    def test_percentile_small_sample_stability(self):
        # nearest-rank would report 1.0 for p50 of [1, 100]; the
        # interpolated value reflects both samples
        h = MetricsRegistry().histogram("repro_h")
        h.observe(1.0)
        h.observe(100.0)
        assert h.percentile(50) == pytest.approx(50.5)

    def test_empty_percentile(self):
        h = MetricsRegistry().histogram("repro_h")
        assert h.percentile(50) == 0.0

    def test_labels_preregistration_renders_zero_buckets(self):
        h = MetricsRegistry().histogram(
            "repro_stage_seconds", buckets=(1.0, 10.0)
        )
        h.labels(stage="map")
        text = "\n".join(h.render())
        assert 'repro_stage_seconds_bucket{stage="map",le="1"} 0' in text
        assert 'repro_stage_seconds_bucket{stage="map",le="10"} 0' in text
        assert 'repro_stage_seconds_bucket{stage="map",le="+Inf"} 0' in text
        assert 'repro_stage_seconds_sum{stage="map"} 0' in text
        assert 'repro_stage_seconds_count{stage="map"} 0' in text
        # observations after pre-registration accumulate normally
        h.observe(0.5, stage="map")
        text = "\n".join(h.render())
        assert 'repro_stage_seconds_bucket{stage="map",le="1"} 1' in text
        assert h.count(stage="map") == 1

    def test_empty_histogram_renders_zero_series(self):
        h = MetricsRegistry().histogram("repro_h", buckets=(1.0,))
        text = "\n".join(h.render())
        assert 'repro_h_bucket{le="1"} 0' in text
        assert 'repro_h_bucket{le="+Inf"} 0' in text
        assert "repro_h_sum 0" in text
        assert "repro_h_count 0" in text

    def test_labelled_series(self):
        h = MetricsRegistry().histogram("repro_stage_seconds", buckets=(1.0,))
        h.observe(0.5, stage="map")
        h.observe(0.7, stage="retime")
        assert h.count(stage="map") == 1
        text = "\n".join(h.render())
        assert 'stage="map"' in text and 'stage="retime"' in text


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("repro_x_total") is reg.counter("repro_x_total")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_x")
        with pytest.raises(TypeError):
            reg.histogram("repro_x")

    def test_render_everything(self):
        reg = MetricsRegistry()
        reg.counter("repro_b_total", "b").inc()
        reg.histogram("repro_a_seconds", "a").observe(0.2)
        text = reg.render()
        # sorted by name, ends with newline
        assert text.index("repro_a_seconds") < text.index("repro_b_total")
        assert text.endswith("\n")


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("repro_depth", "queue depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value() == 6

    def test_labels(self):
        g = MetricsRegistry().gauge("repro_depth")
        g.set(1, pool="a")
        g.set(2, pool="b")
        assert g.value(pool="a") == 1
        assert g.value(pool="b") == 2

    def test_callback_backed(self):
        g = MetricsRegistry().gauge("repro_uptime_seconds")
        ticks = [0.0]
        g.set_function(lambda: ticks[0])
        assert g.value() == 0.0
        ticks[0] = 12.5
        assert g.value() == 12.5
        assert "repro_uptime_seconds 12.5" in "\n".join(g.render())

    def test_info_style_render(self):
        g = MetricsRegistry().gauge("repro_build_info", "identity")
        g.set(1, version="1.0.0", git_sha="abc")
        text = "\n".join(g.render())
        assert "# TYPE repro_build_info gauge" in text
        assert 'repro_build_info{git_sha="abc",version="1.0.0"} 1' in text

    def test_empty_renders_zero_series(self):
        text = "\n".join(MetricsRegistry().gauge("repro_g").render())
        assert "repro_g 0" in text

    def test_registry_kind_conflict(self):
        reg = MetricsRegistry()
        reg.gauge("repro_g")
        with pytest.raises(TypeError):
            reg.counter("repro_g")


class TestExemplars:
    def test_exemplar_attached_to_landing_bucket(self):
        h = MetricsRegistry().histogram("repro_h", buckets=(0.1, 1.0))
        h.observe(0.05, exemplar={"run": "aaa"})
        h.observe(0.5, exemplar={"run": "bbb"})
        h.observe(50.0, exemplar={"run": "inf"})
        assert h.exemplar(0.1) == ({"run": "aaa"}, 0.05)
        assert h.exemplar(1.0) == ({"run": "bbb"}, 0.5)
        assert h.exemplar("+Inf") == ({"run": "inf"}, 50.0)

    def test_latest_exemplar_wins(self):
        h = MetricsRegistry().histogram("repro_h", buckets=(1.0,))
        h.observe(0.2, exemplar={"run": "old"})
        h.observe(0.3, exemplar={"run": "new"})
        assert h.exemplar(1.0) == ({"run": "new"}, 0.3)

    def test_render_openmetrics_suffix(self):
        h = MetricsRegistry().histogram("repro_h", buckets=(1.0,))
        h.observe(0.5, exemplar={"run": "deadbeef"})
        text = "\n".join(h.render())
        assert 'repro_h_bucket{le="1"} 1 # {run="deadbeef"} 0.5' in text

    def test_no_exemplar_no_suffix(self):
        h = MetricsRegistry().histogram("repro_h", buckets=(1.0,))
        h.observe(0.5)
        assert h.exemplar(1.0) is None
        for line in h.render():
            assert " # {" not in line

    def test_labelled_series_keep_separate_exemplars(self):
        h = MetricsRegistry().histogram("repro_h", buckets=(1.0,))
        h.observe(0.5, exemplar={"run": "a"}, span="x")
        h.observe(0.5, exemplar={"run": "b"}, span="y")
        assert h.exemplar(1.0, span="x") == ({"run": "a"}, 0.5)
        assert h.exemplar(1.0, span="y") == ({"run": "b"}, 0.5)
