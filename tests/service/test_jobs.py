"""Unit tests for job specs, content-addressed keys, and execution."""

from pathlib import Path

import pytest

from repro.mcretime import mc_retime
from repro.netlist import read_blif, write_blif
from repro.service import JobFailure, JobResult, RetimeJob, execute_job
from repro.timing import UNIT_DELAY

DATA = Path(__file__).resolve().parent.parent / "data"

TINY = """\
.model tiny
.inputs clk a b
.outputs y
.names a b n1
11 1
.names n1 q1 y
10 1
01 1
.latch n1 q1 re clk 0
.end
"""


class TestCanonicalKey:
    def test_deterministic(self):
        job = RetimeJob(netlist=TINY, name="tiny")
        assert job.canonical_key == RetimeJob(netlist=TINY, name="tiny").canonical_key
        assert len(job.canonical_key) == 64

    def test_whitespace_and_comments_do_not_change_key(self):
        noisy = "# a comment\n" + TINY.replace("\n.names", "\n\n.names")
        assert (
            RetimeJob(netlist=noisy).canonical_key
            == RetimeJob(netlist=TINY).canonical_key
        )

    def test_reemitted_blif_does_not_change_key(self):
        # canonicalisation is parse -> write_blif, so re-emitted BLIF
        # (different latch syntax, reordered covers) keys identically
        reemitted = write_blif(read_blif(TINY))
        assert reemitted != TINY
        assert (
            RetimeJob(netlist=reemitted).canonical_key
            == RetimeJob(netlist=TINY).canonical_key
        )

    def test_options_change_key(self):
        base = RetimeJob(netlist=TINY)
        assert base.canonical_key != RetimeJob(
            netlist=TINY, objective="minperiod"
        ).canonical_key
        assert base.canonical_key != RetimeJob(
            netlist=TINY, delay_model="xc4000e"
        ).canonical_key
        assert base.canonical_key != RetimeJob(
            netlist=TINY, target_period=9.5
        ).canonical_key

    def test_default_delay_model_resolution(self):
        # mcretime flow defaults to unit, synthesis flows to xc4000e
        assert RetimeJob(netlist=TINY).resolved_delay_model() == "unit"
        assert (
            RetimeJob(netlist=TINY, flow="retime").resolved_delay_model()
            == "xc4000e"
        )
        # an explicit model and the matching default share a key
        assert (
            RetimeJob(netlist=TINY, delay_model="unit").canonical_key
            == RetimeJob(netlist=TINY).canonical_key
        )


class TestValidation:
    def test_bad_flow_rejected(self):
        with pytest.raises(ValueError, match="unknown flow"):
            RetimeJob(netlist=TINY, flow="nope")

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            RetimeJob(netlist=TINY, fmt="edif")

    def test_parse_error_surfaces_at_key_time(self):
        from repro.netlist import NetlistError

        job = RetimeJob(netlist=".model x\ngarbage\n.end\n")
        with pytest.raises(NetlistError):
            job.canonical_key


class TestRoundTrips:
    def test_job_dict_round_trip(self):
        job = RetimeJob(netlist=TINY, flow="retime", target_period=4.0)
        assert RetimeJob.from_dict(job.to_dict()) == job

    def test_result_dict_round_trip(self):
        result = JobResult(
            job_id="abc",
            status="failed",
            error=JobFailure(type="timeout", message="too slow"),
            attempts=3,
        )
        back = JobResult.from_dict(result.to_dict())
        assert back.error.type == "timeout"
        assert back.attempts == 3
        assert not back.ok


class TestExecuteJob:
    def test_mcretime_flow_matches_direct_call(self):
        text = (DATA / "c2_small_mapped.blif").read_text()
        job = RetimeJob(netlist=text, name="c2_small_mapped")
        result = execute_job(job)
        assert result.ok
        direct = mc_retime(
            read_blif(text, name_hint="c2_small_mapped"), delay_model=UNIT_DELAY
        )
        assert result.output == write_blif(direct.circuit)
        assert result.metrics["retime"]["n_classes"] == direct.n_classes
        assert result.metrics["timings"]["total"] > 0

    def test_retime_flow_reports_baseline_and_final(self):
        result = execute_job(RetimeJob(netlist=TINY, flow="retime"))
        assert result.ok
        assert set(result.metrics) >= {"baseline", "final", "retime", "timings"}
        assert result.metrics["final"]["accepted"] in (True, False)

    def test_verilog_output_format(self):
        result = execute_job(RetimeJob(netlist=TINY, output_fmt="verilog"))
        assert result.output_fmt == "verilog"
        assert "module" in result.output
