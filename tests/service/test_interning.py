"""Shared-memory design interning: buffers, registry, differential.

The load-bearing guarantee here is the differential one: a job solved
against a shared-memory intern seed must be **byte-identical** to the
same job solved with per-job interning (the legacy ship-the-netlist
path).  The rest pins down the transport (buffer/segment round-trips)
and the lifecycle (refcounts, eviction, cross-registry isolation).
"""

import threading
from pathlib import Path

import pytest

from repro.kernels import (
    HAVE_NUMPY,
    clear_intern_seeds,
    compile_graph,
    graph_from_buffer,
    seed_intern,
)
from repro.mcretime import intern_work_graph, mc_retime
from repro.netlist import read_blif, write_blif
from repro.service import RetimeJob, RetimeService, design_fingerprint, design_ref
from repro.service.interning import (
    HAVE_SHM,
    InternRegistry,
    _attach,
    pack_segment,
    unpack_segment,
)
from repro.service.sharding import HashRing
from repro.timing import UNIT_DELAY

DATA = Path(__file__).resolve().parent.parent / "data"

needs_shm = pytest.mark.skipif(
    not HAVE_SHM, reason="shared-memory interning unavailable"
)


def _work_graph(name="c2_small_mapped"):
    circuit = read_blif((DATA / f"{name}.blif").read_text(), name_hint=name)
    return intern_work_graph(circuit, UNIT_DELAY, semantic_classes=True)


@pytest.mark.skipif(not HAVE_NUMPY, reason="buffer transport requires numpy")
class TestBufferRoundTrip:
    def test_every_field_survives(self):
        cg = compile_graph(_work_graph())
        back = graph_from_buffer(cg.to_buffer())
        assert back.n == cg.n and back.m == cg.m
        assert back.names == cg.names
        assert back.index == cg.index
        assert back.delay == cg.delay
        assert bytes(back.movable) == bytes(cg.movable)
        assert bytes(back.is_mirror) == bytes(cg.is_mirror)
        assert bytes(back.src_host) == bytes(cg.src_host)
        assert back.host == cg.host
        assert back.through_host == cg.through_host
        assert back.eu == cg.eu and back.ev == cg.ev and back.ew == cg.ew
        assert back.out_start == cg.out_start
        assert back.out_edges == cg.out_edges
        assert back.in_start == cg.in_start
        assert back.in_edges == cg.in_edges
        if cg.m:
            assert back.eu_np.tolist() == list(cg.eu_np)
            assert back.ew_np.tolist() == list(cg.ew_np)
            assert back.src_host_np.tolist() == list(cg.src_host_np)

    def test_segment_pack_unpack(self):
        cg = compile_graph(_work_graph())
        text = (DATA / "c2_small_mapped.blif").read_text()
        blob = pack_segment(text, {"a|unit|sem": cg.to_buffer(), "b": b"\x01" * 9})
        got_text, seeds = unpack_segment(memoryview(blob))
        assert got_text == text
        assert set(seeds) == {"a|unit|sem", "b"}
        assert bytes(seeds["b"]) == b"\x01" * 9
        back = graph_from_buffer(seeds["a|unit|sem"])
        assert back.names == cg.names and back.ew == cg.ew


@needs_shm
class TestInternRegistry:
    def test_register_acquire_release_unlinks(self):
        reg = InternRegistry()
        try:
            ref = design_ref(design_fingerprint("text"), "unit", True)
            segment = reg.register(ref, "canonical text")
            assert reg.acquire(ref) == segment
            shm = _attach(segment)  # segment is live while pinned
            text, seeds = unpack_segment(shm.buf)
            assert text == "canonical text" and seeds == {}
            shm.close()
            reg.release(ref)  # job pin gone; registry pin remains
            assert len(reg) == 1
        finally:
            reg.close()
        with pytest.raises(FileNotFoundError):
            _attach(segment)

    def test_register_is_idempotent_per_ref(self):
        reg = InternRegistry()
        try:
            ref = design_ref(design_fingerprint("x"), "unit", True)
            assert reg.register(ref, "x") == reg.register(ref, "x")
            assert len(reg) == 1
        finally:
            reg.close()

    def test_lru_eviction_respects_inflight_pins(self):
        reg = InternRegistry(max_designs=1)
        try:
            ref_a = design_ref(design_fingerprint("a"), "unit", True)
            ref_b = design_ref(design_fingerprint("b"), "unit", True)
            seg_a = reg.register(ref_a, "a")
            reg.acquire(ref_a)  # in-flight job pins a
            reg.register(ref_b, "b")
            # a is pinned, so eviction skips it (bound overshoots)
            assert len(reg) == 2
            _attach(seg_a).close()
            reg.release(ref_a)  # job pin drops; registry pin remains
            assert len(reg) == 2
            # next registration re-applies the bound: a (and b) evict
            reg.register(design_ref(design_fingerprint("c"), "unit", True), "c")
            assert len(reg) == 1
            with pytest.raises(FileNotFoundError):
                _attach(seg_a)
        finally:
            reg.close()

    def test_two_registries_in_one_process_do_not_collide(self):
        # regression: a second service's registry used to reclaim and
        # unlink the first's live segments (same pid, same ref -> same
        # segment name)
        ref = design_ref(design_fingerprint("shared"), "unit", True)
        first, second = InternRegistry(), InternRegistry()
        try:
            seg_first = first.register(ref, "shared")
            seg_second = second.register(ref, "shared")
            assert seg_first != seg_second
            second.close()
            _attach(seg_first).close()  # survives the other's shutdown
        finally:
            first.close()
            second.close()


class TestHashRing:
    def test_deterministic_and_stable_across_rebuilds(self):
        keys = [f"design-{i}" for i in range(200)]
        one, two = HashRing(4), HashRing(4)
        assert [one.shard(k) for k in keys] == [two.shard(k) for k in keys]

    def test_spread_is_roughly_balanced(self):
        ring = HashRing(4)
        keys = [f"fp{i:04x}" for i in range(400)]
        counts = [0, 0, 0, 0]
        for key in keys:
            counts[ring.shard(key)] += 1
        assert min(counts) > 0
        assert max(counts) < 0.6 * len(keys)

    def test_single_shard_degenerates_to_zero(self):
        ring = HashRing(1)
        assert {ring.shard(f"k{i}") for i in range(32)} == {0}


class TestSeededSolveDifferential:
    def test_seeded_mc_retime_is_bit_identical(self):
        """intern seed vs full compile: same solver, same bytes out."""
        text = (DATA / "c3_small_mapped.blif").read_text()
        baseline = mc_retime(
            read_blif(text, name_hint="c3"), delay_model=UNIT_DELAY
        )
        clear_intern_seeds()
        try:
            circuit = read_blif(text, name_hint="c3")
            seed = compile_graph(intern_work_graph(circuit, UNIT_DELAY, True))
            if HAVE_NUMPY:
                # cross the buffer boundary like a worker attach would
                seed = graph_from_buffer(seed.to_buffer())
            seed_intern("ref|work", seed)
            seeded = mc_retime(
                read_blif(text, name_hint="c3"),
                delay_model=UNIT_DELAY,
                intern_key="ref",
            )
        finally:
            clear_intern_seeds()
        assert write_blif(seeded.circuit) == write_blif(baseline.circuit)
        assert seeded.period_after == baseline.period_after

    @needs_shm
    def test_scaleout_service_matches_legacy_service(self):
        """End-to-end: shared-memory dispatch == ship-the-netlist."""
        jobs = [
            RetimeJob.from_file(DATA / f"{name}.blif")
            for name in ("c2_small", "c3_small", "c2_small_mapped")
        ]
        legacy = RetimeService(workers=2, scaleout=False)
        try:
            want = legacy.batch(jobs)
        finally:
            legacy.close()
        scaleout = RetimeService(workers=2, scaleout=True)
        try:
            assert scaleout.scaleout, "shared memory expected in CI"
            got = scaleout.batch(jobs)
        finally:
            scaleout.close()
        for expect, actual in zip(want, got):
            assert expect.ok and actual.ok
            assert actual.output == expect.output
            assert actual.metrics["final"] == expect.metrics["final"]
