"""The experiment runner's pool-backed parallel table sweep."""

from repro.experiments import runner, table1, table2


def test_parallel_rows_match_serial(capsys):
    """Pool-generated Table 1/2 rows equal the serial implementation."""
    scale, names = 0.25, ["C1"]
    t1_rows, t2_rows, t3_rows = runner.parallel_tables(
        scale, names, workers=2, want_t3=True
    )

    serial_t1, flows = table1.run(scale, names)
    serial_t2, _ = table2.run(scale, names, flows)

    assert [r.as_dict() for r in t1_rows] == [r.as_dict() for r in serial_t1]
    # Table2 as_dict drops the timing-derived fields, which legitimately
    # differ run-to-run; the structural columns must match exactly
    assert [r.as_dict() for r in t2_rows] == [r.as_dict() for r in serial_t2]
    assert t3_rows is not None and len(t3_rows) == 1
    assert t3_rows[0].name == "C1"
    assert t3_rows[0].n_lut > 0


def test_runner_cli_with_workers(capsys):
    assert runner.main([
        "--only", "table1", "--scale", "0.25", "--designs", "C1",
        "--workers", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "== Table 1: circuit characteristics ==" in out
    assert "C1" in out and "Totals" in out
