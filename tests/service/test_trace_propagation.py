"""End-to-end distributed tracing: context propagation, stitching, SLOs.

These run real worker processes under both ``fork`` and ``spawn`` start
methods (the trace context rides the task tuple, so it must survive
pickling into a fresh interpreter), plus the two paths that bend the
normal request flow: work stealing and admission shedding.
"""

import json
import multiprocessing as mp
import os
import time
from pathlib import Path

import pytest

from repro import obs
from repro.obs import stitch
from repro.service import (
    RetimeJob,
    RetimeService,
    ServiceOverloadedError,
)
from repro.service.metrics import MetricsRegistry

DATA = Path(__file__).resolve().parent.parent / "data"

START_METHODS = [
    m for m in ("fork", "spawn") if m in mp.get_all_start_methods()
]


def _job(name="c2_small", **options):
    return RetimeJob.from_file(DATA / f"{name}.blif", **options)


def _first_meta(path):
    with path.open() as fh:
        return json.loads(fh.readline())


class TestPropagation:
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_context_survives_both_start_methods(self, tmp_path, start_method):
        """Front-end stamp reaches the worker; stitcher reassembles one
        timeline with >= 90% of the request covered by child spans."""
        trace_dir = tmp_path / "traces"
        svc = RetimeService(
            workers=1,
            job_timeout=120.0,
            max_retries=1,
            retry_backoff=0.05,
            trace_dir=trace_dir,
            start_method=start_method,
        )
        try:
            job_id = svc.submit(_job())
            result = svc.wait(job_id, timeout=120.0)
            assert result.ok, result.error
        finally:
            svc.close()

        job16 = job_id[:16]
        worker_file = trace_dir / f"{job16}.jsonl"
        request_file = trace_dir / f"{job16}.req.jsonl"
        assert worker_file.exists(), "worker trace missing"
        assert request_file.exists(), "front-end request trace missing"

        # the worker stamped its lineage: parent span 4 (request.dispatch)
        # in the front-end process
        worker_meta = _first_meta(worker_file)
        assert worker_meta["parent_span"] == 4
        assert worker_meta["parent_pid"] == os.getpid()
        assert worker_meta["pid"] != os.getpid()

        stitched = stitch.stitch_dir(trace_dir, job=job16)
        assert list(stitched) == [job16]
        events = stitched[job16]
        pids = {e["pid"] for e in events if e.get("type") == "span"}
        assert len(pids) == 2

        (timeline,) = stitch.request_timelines(events)
        assert timeline["coverage"] >= 0.9
        # the worker's solve span was adopted under request.dispatch
        names = {
            e["name"]
            for e in events
            if e.get("type") == "span" and e.get("stitched_parent")
        }
        assert "job.execute" in names

        out = tmp_path / "stitched.jsonl"
        stitch.write_jsonl(events, out)
        assert obs.jsonl_errors(out) == []

    def test_trace_events_query_matches_files(self, tmp_path):
        trace_dir = tmp_path / "traces"
        svc = RetimeService(
            workers=1, job_timeout=120.0, max_retries=1,
            retry_backoff=0.05, trace_dir=trace_dir,
        )
        try:
            job_id = svc.submit(_job("c3_small"))
            assert svc.wait(job_id, timeout=120.0).ok
            events = svc.trace_events(job_id[:16])
        finally:
            svc.close()
        assert events is not None
        assert events[0].get("stitched") is True
        assert svc.trace_events("no-such-job") is None


class TestStealPathTraced:
    def test_stolen_dispatch_still_stitches(self, tmp_path):
        """A target-period sweep of one design pins every job to one
        home shard; with two workers the surplus is stolen — and the
        stolen requests must trace exactly like affine ones."""
        trace_dir = tmp_path / "traces"
        svc = RetimeService(
            workers=2, job_timeout=120.0, max_retries=1,
            retry_backoff=0.05, trace_dir=trace_dir,
        )
        try:
            jobs = [
                _job("c2_small_mapped", target_period=p)
                for p in (20.0, 21.0, 22.0, 23.0)
            ]
            results = svc.batch(jobs)
            assert all(r.ok for r in results)
            stolen = sum(s["stolen"] for s in svc.pool.stats()["shards"])
        finally:
            svc.close()
        assert stolen >= 1

        stitched = stitch.stitch_dir(trace_dir)
        assert len(stitched) == len(jobs)
        stolen_flags = []
        for events in stitched.values():
            (timeline,) = stitch.request_timelines(events)
            assert timeline["coverage"] >= 0.9
            queue = next(
                e for e in events
                if e.get("type") == "span" and e["name"] == "request.queue"
            )
            stolen_flags.append(queue.get("args", {}).get("stolen"))
        # the queue span records which dispatches broke affinity
        assert stolen_flags.count(True) == stolen


class TestShedPathTraced:
    def test_shed_request_leaves_no_worker_trace(self, tmp_path):
        trace_dir = tmp_path / "traces"
        svc = RetimeService(
            workers=1, job_timeout=5.0, max_retries=0,
            max_pending=0, trace_dir=trace_dir,
        )
        try:
            with pytest.raises(ServiceOverloadedError) as info:
                svc.submit(_job())
            assert info.value.status == 429
            status = svc.slo_status()
            metrics_text = svc.metrics.render()
        finally:
            svc.close()
        # a 429 never reached a worker: no trace files at all
        assert list(trace_dir.glob("*.jsonl")) == []
        # but it burned the shed-rate SLO ...
        assert status["observed"]["shed_rate"] == 1.0
        shed = next(
            s for s in status["slos"] if s["name"] == "shed_rate"
        )
        assert not shed["ok"]
        # ... and left an exemplar pointing at the rejected request
        line = next(
            l for l in metrics_text.splitlines()
            if l.startswith("repro_jobs_shed_total")
        )
        assert '# {run="' in line


class TestExemplars:
    def test_counter_exemplar_renders_openmetrics_style(self):
        registry = MetricsRegistry()
        counter = registry.counter("demo_total", "demo")
        counter.inc(exemplar={"run": "abc123"})
        line = next(
            l for l in registry.render().splitlines()
            if l.startswith("demo_total")
        )
        assert line == 'demo_total 1 # {run="abc123"} 1'
        assert counter.exemplar() == ({"run": "abc123"}, 1.0)

    def test_queue_wait_histogram_carries_request_exemplar(self, tmp_path):
        svc = RetimeService(
            workers=1, job_timeout=120.0, max_retries=1,
            retry_backoff=0.05, trace_dir=tmp_path / "traces",
        )
        try:
            job_id = svc.submit(_job())
            assert svc.wait(job_id, timeout=120.0).ok
            text = svc.metrics.render()
        finally:
            svc.close()
        bucket_lines = [
            l for l in text.splitlines()
            if l.startswith("repro_queue_wait_seconds_bucket")
        ]
        assert any(f'# {{run="{job_id[:16]}"}}' in l for l in bucket_lines)


class TestLiveSLO:
    def test_live_status_and_injection_flip(self, tmp_path):
        """Acceptance: the live service reports green, and an injected
        latency degradation flips the shared check to failing."""
        svc = RetimeService(
            workers=1, job_timeout=120.0, max_retries=1,
            retry_backoff=0.05,
            slo={"window_seconds": 300, "latency_p95_seconds": 120.0},
        )
        try:
            job_id = svc.submit(_job())
            assert svc.wait(job_id, timeout=120.0).ok
            status = svc.slo_status()
        finally:
            svc.close()
        assert status["observed"]["completed"] >= 1
        ok, _ = obs.evaluate(status)
        assert ok
        ok, messages = obs.evaluate(status, inject_latency=1e6)
        assert not ok
        assert any("FAIL latency_p95_seconds" in m for m in messages)
