"""Tests for circuit→mc-graph construction and valid mc-steps (Fig. 2/3)."""

import pytest

from repro.graph import (
    HOST,
    GraphError,
    backward_layer_class,
    build_mcgraph,
    forward_layer_class,
    move_backward,
    move_forward,
    trace_chain,
)
from repro.logic.ternary import T0, T1
from repro.netlist import CONST1, Circuit, GateFn


def enable_pipeline() -> Circuit:
    """Fig. 1a-like: two EN registers around a logic gate."""
    c = Circuit("fig1")
    c.add_input("clk")
    c.add_input("en")
    c.add_input("x1")
    c.add_input("x2")
    r1 = c.add_register(d="x1", q="q1", clk="clk", en="en", name="r1")
    r2 = c.add_register(d="x2", q="q2", clk="clk", en="en", name="r2")
    c.add_gate(GateFn.AND, ["q1", "q2"], "n", name="g")
    c.add_output("n")
    return c


def chained_registers() -> Circuit:
    c = Circuit("chain2")
    c.add_input("clk")
    c.add_input("a")
    c.add_register(d="a", q="q1", clk="clk", name="r1")
    c.add_register(d="q1", q="q2", clk="clk", name="r2")
    c.add_gate(GateFn.NOT, ["q2"], "y", name="g")
    c.add_output("y")
    return c


class TestTraceChain:
    def test_direct_gate(self):
        c = enable_pipeline()
        kind, name, regs = trace_chain(c, "n")
        assert (kind, name, regs) == ("gate", "g", [])

    def test_through_register(self):
        c = enable_pipeline()
        kind, name, regs = trace_chain(c, "q1")
        assert kind == "input" and name == "x1"
        assert [r.name for r in regs] == ["r1"]

    def test_two_registers_ordered_source_first(self):
        c = chained_registers()
        kind, name, regs = trace_chain(c, "q2")
        assert name == "a"
        assert [r.name for r in regs] == ["r1", "r2"]

    def test_undriven_raises(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(GraphError):
            trace_chain(c, "ghost")


class TestBuild:
    def test_vertices_and_host(self):
        c = enable_pipeline()
        res = build_mcgraph(c)
        g = res.graph
        assert HOST in g.vertices
        assert g.vertices["g"].kind == "gate"
        assert g.vertices["x1"].kind == "input"
        assert any(v.kind == "output" for v in g.vertices.values())

    def test_register_sequences_on_edges(self):
        c = chained_registers()
        res = build_mcgraph(c)
        edges = [e for e in res.graph.iter_edges() if e.v == "g"]
        assert len(edges) == 1
        assert edges[0].w == 2
        assert [r.origin for r in edges[0].regs] == ["r1", "r2"]

    def test_control_output_vertex_created(self):
        c = enable_pipeline()
        res = build_mcgraph(c)
        assert "en" in res.ctrl_vertices
        ctrl = res.ctrl_vertices["en"]
        assert res.graph.vertices[ctrl].kind == "ctrl"
        # an edge from the input vertex 'en' to the ctrl vertex
        assert any(
            e.u == "en" and e.v == ctrl for e in res.graph.iter_edges()
        )

    def test_no_ctrl_vertex_for_const_enable(self):
        c = Circuit()
        c.add_input("clk")
        c.add_input("a")
        c.add_register(d="a", clk="clk", en=CONST1)
        res = build_mcgraph(c)
        assert res.ctrl_vertices == {}

    def test_same_class_same_id(self):
        c = enable_pipeline()
        res = build_mcgraph(c)
        assert res.reg_class["r1"] == res.reg_class["r2"]
        assert res.n_classes == 1

    def test_different_controls_different_classes(self):
        c = Circuit()
        c.add_input("clk")
        c.add_input("a")
        c.add_input("e1")
        c.add_input("e2")
        c.add_register(d="a", q="qa", clk="clk", en="e1", name="ra")
        c.add_register(d="qa", q="qb", clk="clk", en="e2", name="rb")
        c.add_gate(GateFn.NOT, ["qb"], "y")
        c.add_output("y")
        res = build_mcgraph(c)
        assert res.reg_class["ra"] != res.reg_class["rb"]
        assert res.n_classes == 2

    def test_reset_values_carried(self):
        c = Circuit()
        c.add_input("clk")
        c.add_input("a")
        c.add_input("rs")
        c.add_register(d="a", q="q", clk="clk", ar="rs", aval=T1, name="r")
        c.add_gate(GateFn.NOT, ["q"], "y")
        c.add_output("y")
        res = build_mcgraph(c)
        edge = next(e for e in res.graph.iter_edges() if e.w == 1)
        assert edge.regs[0].aval == T1

    def test_host_edges_to_inputs_and_from_outputs(self):
        c = enable_pipeline()
        g = build_mcgraph(c).graph
        inputs = {"clk", "en", "x1", "x2"}
        host_out = {e.v for e in g.out_edges(HOST)}
        assert inputs <= host_out
        host_in = {e.u for e in g.in_edges(HOST)}
        assert any(v.startswith("$out") for v in host_in)

    def test_constant_inputs_skipped(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate(GateFn.AND, ["a", CONST1], "y", name="g")
        c.add_output("y")
        g = build_mcgraph(c).graph
        assert all(e.v != "g" or e.u == "a" for e in g.iter_edges())


class TestMcSteps:
    def test_forward_step_fig1(self):
        """Both EN registers move forward across the AND gate together."""
        c = enable_pipeline()
        g = build_mcgraph(c).graph
        assert forward_layer_class(g, "g") is not None
        cls = move_forward(g, "g")
        # fanins now empty, fanout edge to the output vertex carries one reg
        for e in g.in_edges("g"):
            assert e.w == 0
        out_edge = g.out_edges("g")[0]
        assert out_edge.w == 1 and out_edge.regs[0].cls == cls

    def test_forward_blocked_on_mixed_classes(self):
        c = Circuit()
        c.add_input("clk")
        c.add_input("a")
        c.add_input("b")
        c.add_input("e")
        c.add_register(d="a", q="qa", clk="clk", en="e", name="ra")
        c.add_register(d="b", q="qb", clk="clk", name="rb")
        c.add_gate(GateFn.AND, ["qa", "qb"], "y", name="g")
        c.add_output("y")
        g = build_mcgraph(c).graph
        assert forward_layer_class(g, "g") is None
        with pytest.raises(GraphError):
            move_forward(g, "g")

    def test_backward_step(self):
        c = chained_registers()
        g = build_mcgraph(c).graph
        # move registers backward across the NOT gate: its fanout edge has
        # no registers, so backward is invalid; forward is valid twice
        assert backward_layer_class(g, "g") is None
        assert forward_layer_class(g, "g") is not None
        move_forward(g, "g")
        move_forward(g, "g")
        assert forward_layer_class(g, "g") is None
        # now the registers sit after g: a backward step is possible again
        assert backward_layer_class(g, "g") is not None
        move_backward(g, "g")
        assert g.out_edges("g")[0].w == 1

    def test_io_vertices_not_movable(self):
        c = chained_registers()
        g = build_mcgraph(c).graph
        assert backward_layer_class(g, "a") is None
        assert forward_layer_class(g, HOST) is None

    def test_forward_then_backward_roundtrip_weights(self):
        c = enable_pipeline()
        g = build_mcgraph(c).graph
        before = {e.eid: e.w for e in g.iter_edges()}
        move_forward(g, "g")
        move_backward(g, "g")
        after = {e.eid: e.w for e in g.iter_edges()}
        assert before == after


class TestPureRegisterLoop:
    def test_self_latch_rejected(self):
        c = Circuit()
        c.add_input("clk")
        c.add_register(d="q", q="q", clk="clk", name="r")
        c.add_output("q")
        with pytest.raises(GraphError, match="pure register loop"):
            build_mcgraph(c)

    def test_two_register_ring_rejected(self):
        c = Circuit()
        c.add_input("clk")
        c.add_register(d="q2", q="q1", clk="clk", name="r1")
        c.add_register(d="q1", q="q2", clk="clk", name="r2")
        c.add_output("q1")
        with pytest.raises(GraphError, match="pure register loop"):
            build_mcgraph(c)

    def test_loop_through_gate_accepted(self):
        c = Circuit()
        c.add_input("clk")
        c.add_gate(GateFn.NOT, ["q"], "d", name="g")
        c.add_register(d="d", q="q", clk="clk", name="r")
        c.add_output("q")
        build_mcgraph(c)  # fine: the inverter anchors the loop
