"""Property tests: mc-steps obey the retiming algebra.

After ANY sequence of valid mc-steps with per-vertex net move counts
r(v) (+1 per backward, −1 per forward), every edge weight must satisfy
``w' = w + r(v) − r(u)`` — the Leiserson–Saxe equation — and register
class sequences must stay consistent layer-by-layer.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    HOST,
    RegInstance,
    RetimingGraph,
    backward_layer_class,
    forward_layer_class,
    move_backward,
    move_forward,
)


def random_mc_graph(rng: random.Random, n_classes: int = 2) -> RetimingGraph:
    """Small random mc-graph with register sequences on every edge."""
    g = RetimingGraph("prop")
    g.add_host()
    names = [f"v{i}" for i in range(rng.randint(3, 6))]
    for name in names:
        g.add_vertex(name, 1.0)
    def regs():
        return [
            RegInstance(rng.randrange(n_classes))
            for _ in range(rng.randint(0, 2))
        ]
    g.add_edge(HOST, names[0], 0, [])
    g.add_edge(names[-1], HOST, 0, [])
    for _ in range(rng.randint(4, 9)):
        u, v = rng.sample(names, 2)
        g.add_edge(u, v, 0, [])
        edge = g.out_edges(u)[-1]
        edge.regs = regs()
        edge.w = len(edge.regs)
    return g


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_moves_respect_retiming_equation(seed):
    rng = random.Random(seed)
    g = random_mc_graph(rng)
    original = {e.eid: e.w for e in g.iter_edges()}
    counts = {v: 0 for v in g.vertices}
    for _ in range(rng.randint(1, 15)):
        movable = [
            v for v in g.vertices
            if backward_layer_class(g, v) is not None
            or forward_layer_class(g, v) is not None
        ]
        if not movable:
            break
        v = rng.choice(movable)
        can_back = backward_layer_class(g, v) is not None
        can_fwd = forward_layer_class(g, v) is not None
        if can_back and (not can_fwd or rng.random() < 0.5):
            move_backward(g, v)
            counts[v] += 1
        else:
            move_forward(g, v)
            counts[v] -= 1
    for edge in g.iter_edges():
        expected = original[edge.eid] + counts[edge.v] - counts[edge.u]
        assert edge.w == expected
        assert len(edge.regs or []) == edge.w
    g.check()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_backward_forward_inverse(seed):
    """A backward step followed by a forward step at the same vertex
    restores every edge weight (classes may be relabelled within the
    moved layer, but counts must return exactly)."""
    rng = random.Random(seed)
    g = random_mc_graph(rng)
    candidates = [v for v in g.vertices if backward_layer_class(g, v) is not None]
    if not candidates:
        return
    v = rng.choice(candidates)
    before = {e.eid: e.w for e in g.iter_edges()}
    cls1 = move_backward(g, v)
    cls2 = move_forward(g, v)
    assert cls1 == cls2  # the same layer class comes back
    after = {e.eid: e.w for e in g.iter_edges()}
    assert before == after


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_total_weight_change_is_structural(seed):
    """Total register count changes only via fanin/fanout imbalance:
    a backward step at v adds |in(v)| − |out(v)| registers."""
    rng = random.Random(seed)
    g = random_mc_graph(rng)
    candidates = [v for v in g.vertices if backward_layer_class(g, v) is not None]
    if not candidates:
        return
    v = rng.choice(candidates)
    delta = len(g.in_edges(v)) - len(g.out_edges(v))
    before = g.total_weight()
    move_backward(g, v)
    assert g.total_weight() == before + delta
