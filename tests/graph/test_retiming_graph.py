"""Tests for the retiming-graph data structure."""

import pytest

from repro.graph import (
    HOST,
    GraphError,
    RegInstance,
    RetimingGraph,
)


def triangle() -> RetimingGraph:
    g = RetimingGraph("tri")
    for name in "abc":
        g.add_vertex(name, delay=1.0)
    g.add_edge("a", "b", 1)
    g.add_edge("b", "c", 0)
    g.add_edge("c", "a", 2)
    return g


class TestStructure:
    def test_duplicate_vertex_rejected(self):
        g = RetimingGraph()
        g.add_vertex("a")
        with pytest.raises(GraphError):
            g.add_vertex("a")

    def test_edge_needs_endpoints(self):
        g = RetimingGraph()
        g.add_vertex("a")
        with pytest.raises(GraphError):
            g.add_edge("a", "zz")

    def test_negative_weight_rejected(self):
        g = RetimingGraph()
        g.add_vertex("a")
        g.add_vertex("b")
        with pytest.raises(GraphError):
            g.add_edge("a", "b", -1)

    def test_regs_length_must_match(self):
        g = RetimingGraph()
        g.add_vertex("a")
        g.add_vertex("b")
        with pytest.raises(GraphError):
            g.add_edge("a", "b", 2, [RegInstance(0)])

    def test_multi_edges_allowed(self):
        g = RetimingGraph()
        g.add_vertex("a")
        g.add_vertex("b")
        g.add_edge("a", "b", 1)
        g.add_edge("a", "b", 2)
        assert len(g.out_edges("a")) == 2
        assert g.successors("a") == ["b"]

    def test_host_idempotent(self):
        g = RetimingGraph()
        g.add_host()
        g.add_host()
        assert g.vertices[HOST].kind == "host"

    def test_remove_edge(self):
        g = triangle()
        eid = g.out_edges("a")[0].eid
        g.remove_edge(eid)
        assert g.out_edges("a") == []
        g.check()

    def test_movability(self):
        g = RetimingGraph()
        assert g.add_vertex("g", kind="gate").movable
        assert g.add_vertex("s", kind="sep").movable
        assert not g.add_vertex("i", kind="input").movable
        assert not g.add_vertex("o", kind="output").movable
        assert not g.add_vertex("c", kind="ctrl").movable
        assert not g.add_host().movable

    def test_bad_kind_rejected(self):
        g = RetimingGraph()
        with pytest.raises(GraphError):
            g.add_vertex("x", kind="banana")

    def test_negative_delay_rejected(self):
        g = RetimingGraph()
        with pytest.raises(GraphError):
            g.add_vertex("x", delay=-1.0)


class TestRetimingAlgebra:
    def test_retimed_weight(self):
        g = triangle()
        e_ab = g.out_edges("a")[0]
        assert g.retimed_weight(e_ab, {"a": 1, "b": 1}) == 1
        assert g.retimed_weight(e_ab, {"a": 1}) == 0
        assert g.retimed_weight(e_ab, {"b": 2}) == 3

    def test_apply_retiming_preserves_cycle_weight(self):
        g = triangle()
        r = {"a": 0, "b": 1, "c": 1}
        g2 = g.apply_retiming(r)
        assert g2.total_weight() == g.total_weight()

    def test_apply_retiming_rejects_negative(self):
        g = triangle()
        with pytest.raises(GraphError):
            g.apply_retiming({"a": 5})

    def test_copy_independent(self):
        g = triangle()
        g2 = g.copy()
        g2.out_edges("a")[0].w = 99
        assert g.out_edges("a")[0].w == 1

    def test_zero_weight_cycle_detection(self):
        g = RetimingGraph()
        g.add_vertex("a")
        g.add_vertex("b")
        g.add_edge("a", "b", 0)
        g.add_edge("b", "a", 0)
        assert g.zero_weight_cyclic()
        g2 = triangle()
        assert not g2.zero_weight_cyclic()

    def test_total_weight(self):
        assert triangle().total_weight() == 3
