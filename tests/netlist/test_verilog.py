"""Tests for the structural Verilog writer/reader."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.simulate import SequentialSimulator, eval_nets
from repro.logic.ternary import T0, T1, TX
from repro.netlist import CONST0, CONST1, Circuit, GateFn, check_circuit
from repro.netlist.verilog import (
    VerilogError,
    read_verilog,
    write_verilog,
)


def comb_equal(a: Circuit, b: Circuit) -> bool:
    ins = list(a.inputs)
    for combo in itertools.product((T0, T1), repeat=len(ins)):
        vec = dict(zip(ins, combo))
        va = eval_nets(a, vec)
        vb = eval_nets(b, vec)
        for na, nb in zip(a.outputs, b.outputs):
            if va[na] != vb[nb]:
                return False
    return True


class TestWriter:
    def test_gate_expressions(self):
        c = Circuit("g")
        c.add_input("a")
        c.add_input("b")
        c.add_input("s")
        for fn in (GateFn.AND, GateFn.NAND, GateFn.OR, GateFn.NOR,
                   GateFn.XOR, GateFn.XNOR):
            c.add_output(c.add_gate(fn, ["a", "b"]).output)
        c.add_output(c.add_gate(GateFn.NOT, ["a"]).output)
        c.add_output(c.add_gate(GateFn.MUX, ["s", "a", "b"]).output)
        text = write_verilog(c)
        assert "a & b" in text and "~(a & b)" in text
        assert "a ^ b" in text and "s ? b : a" in text

    def test_register_templates(self):
        c = Circuit("r")
        for n in ("clk", "en", "sr", "ar", "d"):
            c.add_input(n)
        c.add_register(d="d", q="q1", clk="clk")
        c.add_register(d="d", q="q2", clk="clk", en="en")
        c.add_register(d="d", q="q3", clk="clk", sr="sr", sval=T1)
        c.add_register(d="d", q="q4", clk="clk", ar="ar", aval=T0, en="en")
        for q in ("q1", "q2", "q3", "q4"):
            c.add_output(q)
        text = write_verilog(c)
        assert "always @(posedge clk or posedge ar)" in text
        assert "if (ar) q4 <= 1'b0;" in text
        assert "if (sr) q3 <= 1'b1;" in text
        assert "if (en) q2 <= d;" in text
        assert "q1 <= d;" in text

    def test_name_mangling(self):
        c = Circuit("m")
        c.add_input("a")
        g = c.add_gate(GateFn.NOT, ["a"], "n$weird")
        c.add_output("n$weird")
        text = write_verilog(c)
        assert "$" not in text.replace("1'b", "")

    def test_constants_inline(self):
        c = Circuit("k")
        c.add_input("a")
        c.add_gate(GateFn.AND, ["a", CONST1], "y")
        c.add_output("y")
        assert "1'b1" in write_verilog(c)

    def test_register_q_input_collision_rejected(self):
        c = Circuit("bad")
        c.add_input("clk")
        c.add_input("a")
        c.add_output("a")
        # make a register whose q is an input via direct surgery
        from repro.netlist.cells import Register

        c.registers["r"] = Register("r", "a", "a2", "clk")
        c.registers["r"].q = "a"  # collide
        with pytest.raises(VerilogError):
            write_verilog(c)


class TestRoundTrip:
    def test_combinational(self):
        c = Circuit("rt")
        c.add_input("a")
        c.add_input("b")
        c.add_input("s")
        n1 = c.add_gate(GateFn.AND, ["a", "b"]).output
        n2 = c.add_gate(GateFn.MUX, ["s", n1, "b"]).output
        n3 = c.add_gate(GateFn.XOR, [n2, "a"]).output
        c.add_output(n3)
        c2 = read_verilog(write_verilog(c))
        check_circuit(c2)
        assert comb_equal(c, c2)

    def test_sequential(self):
        c = Circuit("seq")
        for n in ("clk", "en", "rs", "d"):
            c.add_input(n)
        c.add_register(d="d", q="q", clk="clk", en="en", ar="rs", aval=T1)
        c.add_output("q")
        c2 = read_verilog(write_verilog(c))
        reg = next(iter(c2.registers.values()))
        assert reg.en == "en" and reg.ar == "rs" and reg.aval == T1
        sims = [SequentialSimulator(x, state=None) for x in (c, c2)]
        for vec in ({"d": T1, "en": T1, "rs": T0}, {"d": T0, "en": T0, "rs": T0},
                    {"d": T0, "en": T1, "rs": T1}):
            outs = [s.step(vec) for s in sims]
            assert list(outs[0].values()) == list(outs[1].values())

    def test_sync_reset_roundtrip(self):
        c = Circuit("sr")
        for n in ("clk", "s", "d"):
            c.add_input(n)
        c.add_register(d="d", q="q", clk="clk", sr="s", sval=T0)
        c.add_output("q")
        c2 = read_verilog(write_verilog(c))
        reg = next(iter(c2.registers.values()))
        assert reg.sr == "s" and reg.sval == T0 and reg.ar is None

    def test_constant_d_roundtrip(self):
        c = Circuit("cd")
        c.add_input("clk")
        c.add_register(d=CONST1, q="q", clk="clk")
        c.add_output("q")
        c2 = read_verilog(write_verilog(c))
        reg = next(iter(c2.registers.values()))
        assert reg.d == CONST1

    @settings(max_examples=40, deadline=None)
    @given(
        tables=st.lists(
            st.integers(min_value=0, max_value=255), min_size=1, max_size=5
        )
    )
    def test_random_lut_circuits(self, tables):
        c = Circuit("prop")
        nets = [c.add_input(f"i{k}") for k in range(3)]
        for t in tables:
            g = c.add_gate(GateFn.LUT, nets[-3:], table=t)
            nets.append(g.output)
        c.add_output(nets[-1])
        c2 = read_verilog(write_verilog(c))
        check_circuit(c2)
        assert comb_equal(c, c2)

    def test_generated_design_roundtrip(self):
        from repro.synth import build_design

        c = build_design("C2", scale=0.5).circuit
        c2 = read_verilog(write_verilog(c))
        check_circuit(c2)
        assert len(c2.registers) == len(c.registers)


class TestReaderErrors:
    def test_garbage_rejected(self):
        with pytest.raises(VerilogError):
            read_verilog("module m(; endmodule")
        with pytest.raises(VerilogError):
            read_verilog("module m(a); input a; %%% endmodule")

    def test_comments_stripped(self):
        text = (
            "module m(a, y); // ports\n input a;\n output y;\n"
            "/* block\ncomment */ assign y = ~a;\nendmodule\n"
        )
        c = read_verilog(text)
        assert c.driver_gate("y") is not None
