"""Coverage for small public API surfaces not exercised elsewhere."""

import pytest

from repro.graph import RegInstance
from repro.logic.simulate import SequentialSimulator
from repro.logic.ternary import T0, T1, TX
from repro.netlist import Circuit, GateFn, Port, circuit_stats
from repro.netlist.signals import NetNamer, const_net, const_value, is_const


class TestSignals:
    def test_const_net_and_value(self):
        assert const_value(const_net(0)) == 0
        assert const_value(const_net(1)) == 1
        with pytest.raises(ValueError):
            const_value("not_a_const")
        assert is_const(const_net(1)) and not is_const("x")

    def test_namer_fresh_and_claim(self):
        namer = NetNamer()
        a = namer.fresh("n")
        b = namer.fresh("n")
        assert a != b and a in namer and b in namer
        namer.claim("n$2")
        assert namer.fresh("n") != "n$2"


class TestPort:
    def test_directions(self):
        assert Port("a", "input").direction == "input"
        with pytest.raises(ValueError):
            Port("a", "sideways")


class TestStatsRow:
    def test_row_rendering(self):
        c = Circuit("rowtest")
        for n in ("clk", "e", "d"):
            c.add_input(n)
        c.add_register(d="d", clk="clk", en="e")
        stats = circuit_stats(c)
        row = stats.row()
        assert row["Name"] == "rowtest"
        assert row["EN"] == "y" and row["AS/AC"] == ""
        assert row["#FF"] == 1


class TestRegInstance:
    def test_with_values(self):
        inst = RegInstance(3)
        other = inst.with_values(T1, T0)
        assert (other.sval, other.aval) == (T1, T0)
        assert other.cls == 3
        assert inst.sval == TX  # frozen original untouched


class TestSimulatorApi:
    def circuit(self):
        c = Circuit()
        for n in ("clk", "d"):
            c.add_input(n)
        c.add_register(d="d", q="q", clk="clk", name="r")
        c.add_output("q")
        return c

    def test_outputs_without_step(self):
        sim = SequentialSimulator(self.circuit(), state={"r": T1})
        assert sim.outputs({"d": T0}) == {"q": T1}
        # outputs() must not advance state
        assert sim.state["r"] == T1

    def test_run_sequence(self):
        sim = SequentialSimulator(self.circuit(), state={"r": T0})
        outs = sim.run([{"d": T1}, {"d": T0}, {"d": T1}])
        assert [o["q"] for o in outs] == [T0, T1, T0]
