"""Tests for the register-class histogram in circuit statistics."""

from repro.logic.ternary import T0, T1, TX
from repro.netlist import (
    Circuit,
    GateFn,
    circuit_stats,
    class_histogram,
    format_class_histogram,
    register_class_label,
)
from repro.netlist.signals import CONST0, CONST1
from repro.pipeline import cslow_transform


def _mixed_circuit() -> Circuit:
    c = Circuit("mixed")
    clk = c.add_input("clk")
    en = c.add_input("en")
    sr = c.add_input("srst")
    ar = c.add_input("rst")
    d = c.add_input("d")
    taps = []
    taps.append(c.add_register(d, clk=clk).q)
    taps.append(c.add_register(taps[-1], clk=clk).q)
    taps.append(c.add_register(taps[-1], clk=clk, en=en).q)
    taps.append(c.add_register(taps[-1], clk=clk, sr=sr, sval=T1).q)
    taps.append(
        c.add_register(taps[-1], clk=clk, en=en, ar=ar, aval=T0).q
    )
    net = taps[0]
    for other in taps[1:]:
        net = c.add_gate(GateFn.XOR, [net, other]).output
    c.add_output(net)
    return c


class TestRegisterClassLabel:
    def test_shapes(self, ):
        c = _mixed_circuit()
        labels = [
            register_class_label(r) for r in c.registers.values()
        ]
        assert labels == ["plain", "plain", "EN", "SR1", "EN+AR0"]

    def test_const_tied_pins_do_not_count(self):
        c = Circuit("tied")
        clk = c.add_input("clk")
        d = c.add_input("d")
        # EN tied high / AR tied low are the neutral constants: the
        # register behaves as plain and must be labelled plain
        reg = c.add_register(d, clk=clk, en=CONST1, ar=CONST0, aval=T0)
        c.add_output(reg.q)
        assert register_class_label(reg) == "plain"

    def test_x_reset_value_char(self):
        c = Circuit("xval")
        clk = c.add_input("clk")
        ar = c.add_input("rst")
        d = c.add_input("d")
        reg = c.add_register(d, clk=clk, ar=ar, aval=TX)
        c.add_output(reg.q)
        assert register_class_label(reg) == "ARx"


class TestClassHistogram:
    def test_counts_and_sorted(self):
        hist = class_histogram(_mixed_circuit())
        assert hist == {"EN": 1, "EN+AR0": 1, "SR1": 1, "plain": 2}
        assert list(hist) == sorted(hist)

    def test_in_circuit_stats(self):
        stats = circuit_stats(_mixed_circuit())
        assert stats.class_histogram == class_histogram(_mixed_circuit())
        assert sum(stats.class_histogram.values()) == stats.n_ff

    def test_format(self):
        assert (
            format_class_histogram({"plain": 12, "EN": 4})
            == "plain=12 EN=4"
        )
        assert format_class_histogram({}) == "-"

    def test_cslow_collapses_to_plain(self):
        # the before/after story the transform reports rely on
        c = _mixed_circuit()
        out, _ = cslow_transform(c, 2)
        assert set(class_histogram(out)) == {"plain"}
        assert sum(class_histogram(out).values()) == 2 * len(c.registers)
