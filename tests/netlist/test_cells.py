"""Unit tests for gates, registers, and truth-table normalization."""

import pytest

from repro.logic.ternary import T0, T1, TX
from repro.netlist import Gate, GateFn, Register, make_lut
from repro.netlist.cells import _table_from_fn


class TestGateTables:
    def test_and2_table(self):
        g = Gate("g", GateFn.AND, ["a", "b"], "y")
        assert g.truth_table() == 0b1000

    def test_or2_table(self):
        g = Gate("g", GateFn.OR, ["a", "b"], "y")
        assert g.truth_table() == 0b1110

    def test_nand2_table(self):
        g = Gate("g", GateFn.NAND, ["a", "b"], "y")
        assert g.truth_table() == 0b0111

    def test_nor2_table(self):
        g = Gate("g", GateFn.NOR, ["a", "b"], "y")
        assert g.truth_table() == 0b0001

    def test_xor2_table(self):
        g = Gate("g", GateFn.XOR, ["a", "b"], "y")
        assert g.truth_table() == 0b0110

    def test_xnor2_table(self):
        g = Gate("g", GateFn.XNOR, ["a", "b"], "y")
        assert g.truth_table() == 0b1001

    def test_not_table(self):
        g = Gate("g", GateFn.NOT, ["a"], "y")
        assert g.truth_table() == 0b01

    def test_buf_table(self):
        g = Gate("g", GateFn.BUF, ["a"], "y")
        assert g.truth_table() == 0b10

    def test_mux_semantics(self):
        g = Gate("g", GateFn.MUX, ["s", "a", "b"], "y")
        # sel=0 -> a; sel=1 -> b   (inputs ordered s, a, b = bits 0,1,2)
        for s in (0, 1):
            for a in (0, 1):
                for b in (0, 1):
                    expected = b if s else a
                    assert g.eval_binary([s, a, b]) == expected

    def test_and3_matches_python_all(self):
        g = Gate("g", GateFn.AND, ["a", "b", "c"], "y")
        for m in range(8):
            bits = [(m >> i) & 1 for i in range(3)]
            assert g.eval_binary(bits) == int(all(bits))

    def test_xor3_is_parity(self):
        g = Gate("g", GateFn.XOR, ["a", "b", "c"], "y")
        for m in range(8):
            bits = [(m >> i) & 1 for i in range(3)]
            assert g.eval_binary(bits) == sum(bits) % 2

    def test_mux_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            _table_from_fn(GateFn.MUX, 2)

    def test_lut_requires_table(self):
        with pytest.raises(ValueError):
            Gate("g", GateFn.LUT, ["a"], "y")

    def test_lut_table_too_wide_rejected(self):
        with pytest.raises(ValueError):
            Gate("g", GateFn.LUT, ["a"], "y", table=0b10110)

    def test_not_with_two_inputs_rejected(self):
        with pytest.raises(ValueError):
            Gate("g", GateFn.NOT, ["a", "b"], "y")

    def test_is_constant(self):
        assert make_lut("g", ["a", "b"], "y", 0).is_constant() == 0
        assert make_lut("g", ["a", "b"], "y", 0b1111).is_constant() == 1
        assert make_lut("g", ["a", "b"], "y", 0b1000).is_constant() is None

    def test_zero_input_lut(self):
        g = make_lut("g", [], "y", 1)
        assert g.eval_binary([]) == 1
        assert g.is_constant() == 1

    def test_clone_is_independent(self):
        g = Gate("g", GateFn.AND, ["a", "b"], "y")
        c = g.clone()
        c.inputs[0] = "z"
        assert g.inputs == ["a", "b"]


class TestRegister:
    def test_plain_register_flags(self):
        r = Register("r", "d", "q", "clk")
        assert not r.has_enable
        assert not r.has_sync_reset
        assert not r.has_async_reset
        assert r.control_nets() == []

    def test_enable_const1_is_no_enable(self):
        from repro.netlist import CONST1

        r = Register("r", "d", "q", "clk", en=CONST1)
        assert not r.has_enable

    def test_full_register(self):
        r = Register("r", "d", "q", "clk", en="e", sr="s", ar="a", sval=T1, aval=T0)
        assert r.has_enable and r.has_sync_reset and r.has_async_reset
        assert r.control_nets() == ["e", "s", "a"]
        assert r.reset_label() == "s=1,a=0"

    def test_dontcare_reset_label(self):
        r = Register("r", "d", "q", "clk")
        assert r.reset_label() == "s=-,a=-"

    def test_bad_reset_value_rejected(self):
        with pytest.raises(ValueError):
            Register("r", "d", "q", "clk", sval=7)

    def test_clone(self):
        r = Register("r", "d", "q", "clk", en="e", sval=T0)
        c = r.clone()
        c.d = "other"
        assert r.d == "d"
        assert c.en == "e" and c.sval == T0

    def test_default_resets_are_dontcare(self):
        r = Register("r", "d", "q", "clk")
        assert r.sval == TX and r.aval == TX
