"""Extended-BLIF parser/writer tests, including property-based round-trip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.ternary import T0, T1, TX
from repro.netlist import (
    BlifError,
    Circuit,
    GateFn,
    check_circuit,
    read_blif,
    write_blif,
)


class TestReader:
    def test_basic_names(self):
        c = read_blif(
            """
            .model m
            .inputs a b
            .outputs y
            .names a b y
            11 1
            .end
            """
        )
        assert c.name == "m"
        gate = c.driver_gate("y")
        assert gate.truth_table() == 0b1000

    def test_wildcard_cover(self):
        c = read_blif(".model m\n.inputs a b\n.outputs y\n.names a b y\n1- 1\n-1 1\n")
        assert c.driver_gate("y").truth_table() == 0b1110  # OR

    def test_offset_cover(self):
        c = read_blif(".model m\n.inputs a b\n.outputs y\n.names a b y\n11 0\n")
        assert c.driver_gate("y").truth_table() == 0b0111  # NAND

    def test_constant_one_names(self):
        c = read_blif(".model m\n.outputs y\n.names y\n1\n")
        assert c.driver_gate("y").is_constant() == 1

    def test_constant_zero_names(self):
        c = read_blif(".model m\n.outputs y\n.names y\n")
        assert c.driver_gate("y").is_constant() == 0

    def test_latch(self):
        c = read_blif(
            ".model m\n.inputs d ck\n.outputs q\n.latch d q re ck 0\n"
        )
        reg = c.driver_register("q")
        assert reg.d == "d" and reg.clk == "ck"

    def test_mcff_full(self):
        c = read_blif(
            ".model m\n.inputs d ck e s a\n.outputs q\n"
            ".mcff r0 d=d q=q clk=ck en=e sr=s sval=1 ar=a aval=0\n"
        )
        reg = c.registers["r0"]
        assert reg.en == "e" and reg.sr == "s" and reg.ar == "a"
        assert reg.sval == T1 and reg.aval == T0

    def test_mcff_defaults(self):
        c = read_blif(".model m\n.inputs d ck\n.outputs q\n.mcff r d=d q=q clk=ck\n")
        reg = c.registers["r"]
        assert reg.en is None and reg.sval == TX

    def test_continuation_lines(self):
        c = read_blif(".model m\n.inputs a \\\n b c\n.outputs y\n.names a b c y\n111 1\n")
        assert c.inputs == ["a", "b", "c"]

    def test_comments_stripped(self):
        c = read_blif(".model m # hello\n.inputs a # world\n.outputs a\n")
        assert c.inputs == ["a"]

    def test_errors(self):
        with pytest.raises(BlifError):
            read_blif(".inputs a\n")  # before .model
        with pytest.raises(BlifError):
            read_blif(".model m\n.names a y\n")  # missing cover ok, but:
            read_blif(".model m\n11 1\n")  # cover outside names
        with pytest.raises(BlifError):
            read_blif(".model m\n.inputs a\n.names a y\n111 1\n")  # wrong width
        with pytest.raises(BlifError):
            read_blif(".model m\n.mcff r d=a q=q\n")  # missing clk
        with pytest.raises(BlifError):
            read_blif(".model m\n.frobnicate\n")

    def test_mixed_polarity_cover_rejected(self):
        with pytest.raises(BlifError):
            read_blif(".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n")


class TestRoundTrip:
    def test_register_full_roundtrip(self):
        c = Circuit("rt")
        for net in ("d", "ck", "e", "s", "a"):
            c.add_input(net)
        c.add_register(
            d="d", q="q", clk="ck", name="r0", en="e", sr="s", ar="a", sval=T0, aval=T1
        )
        c.add_output("q")
        c2 = read_blif(write_blif(c))
        r = c2.registers["r0"]
        assert (r.d, r.q, r.clk, r.en, r.sr, r.ar) == ("d", "q", "ck", "e", "s", "a")
        assert (r.sval, r.aval) == (T0, T1)

    def test_gate_function_roundtrip(self):
        c = Circuit("rt")
        c.add_input("a")
        c.add_input("b")
        c.add_input("s")
        for fn in (GateFn.AND, GateFn.OR, GateFn.XOR, GateFn.NAND):
            c.add_output(c.add_gate(fn, ["a", "b"]).output)
        c.add_output(c.add_gate(GateFn.MUX, ["s", "a", "b"]).output)
        c2 = read_blif(write_blif(c))
        check_circuit(c2)
        for net in c.outputs:
            assert (
                c2.driver_gate(net).truth_table() == c.driver_gate(net).truth_table()
            )

    @settings(max_examples=60, deadline=None)
    @given(
        tables=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=6),
        n_regs=st.integers(min_value=0, max_value=4),
        sval=st.sampled_from([T0, T1, TX]),
        aval=st.sampled_from([T0, T1, TX]),
    )
    def test_random_circuit_roundtrip(self, tables, n_regs, sval, aval):
        c = Circuit("prop")
        c.add_input("i0")
        c.add_input("i1")
        c.add_input("i2")
        c.add_input("ck")
        nets = ["i0", "i1", "i2"]
        for i, table in enumerate(tables):
            g = c.add_gate(GateFn.LUT, nets[-3:], table=table)
            nets.append(g.output)
        for i in range(n_regs):
            r = c.add_register(
                d=nets[-1 - i], clk="ck", en="i0", sr="i1", sval=sval, aval=aval
            )
            nets.append(r.q)
        c.add_output(nets[-1])
        text = write_blif(c)
        c2 = read_blif(text)
        check_circuit(c2)
        assert write_blif(c2) == text  # fixed point after one trip
        assert c2.counts() == c.counts()
        for name, gate in c.gates.items():
            match = [g for g in c2.gates.values() if g.output == gate.output]
            assert len(match) == 1
            assert match[0].truth_table() == gate.truth_table()


class TestMcGateDirective:
    def test_malformed_mcgate(self):
        with pytest.raises(BlifError):
            read_blif(".model m\n.inputs a b c\n.mcgate carry x a b c\n")
        with pytest.raises(BlifError):
            read_blif(".model m\n.mcgate frob x a b c y\n")
