"""Unit tests for the Circuit container: indexes, surgery, topo order."""

import pytest

from repro.netlist import (
    CONST1,
    Circuit,
    GateFn,
    NetlistError,
    check_circuit,
    is_valid,
)


def small_circuit() -> Circuit:
    c = Circuit("t")
    c.add_input("a")
    c.add_input("b")
    c.add_input("clk")
    c.add_gate(GateFn.AND, ["a", "b"], "n1", name="g1")
    c.add_gate(GateFn.NOT, ["n1"], "n2", name="g2")
    c.add_register(d="n2", q="q1", clk="clk", name="r1")
    c.add_gate(GateFn.OR, ["q1", "a"], "y", name="g3")
    c.add_output("y")
    return c


class TestConstruction:
    def test_counts(self):
        c = small_circuit()
        assert c.counts() == {"gates": 3, "registers": 1, "inputs": 3, "outputs": 1}

    def test_driver_kinds(self):
        c = small_circuit()
        assert c.driver("a") == ("input", "a")
        assert c.driver("n1") == ("gate", "g1")
        assert c.driver("q1") == ("register", "r1")
        assert c.driver(CONST1) == ("const", CONST1)
        assert c.driver("nope") is None

    def test_driver_gate_and_register(self):
        c = small_circuit()
        assert c.driver_gate("n1").name == "g1"
        assert c.driver_gate("q1") is None
        assert c.driver_register("q1").name == "r1"
        assert c.driver_register("n1") is None

    def test_double_driver_rejected(self):
        c = small_circuit()
        with pytest.raises(NetlistError):
            c.add_gate(GateFn.NOT, ["a"], "n1")
        with pytest.raises(NetlistError):
            c.add_register(d="a", q="n1", clk="clk")
        with pytest.raises(NetlistError):
            c.add_input("n1")

    def test_duplicate_cell_name_rejected(self):
        c = small_circuit()
        with pytest.raises(NetlistError):
            c.add_gate(GateFn.NOT, ["a"], name="g1")
        with pytest.raises(NetlistError):
            c.add_register(d="a", clk="clk", name="r1")

    def test_auto_names_unique(self):
        c = Circuit()
        c.add_input("a")
        g1 = c.add_gate(GateFn.NOT, ["a"])
        g2 = c.add_gate(GateFn.NOT, ["a"])
        assert g1.name != g2.name
        assert g1.output != g2.output

    def test_validation_passes(self):
        check_circuit(small_circuit())

    def test_readers(self):
        c = small_circuit()
        readers = c.readers("a")
        assert ("gate", "g1", 0) in readers
        assert ("gate", "g3", 1) in readers
        assert c.readers("y") == [("output", "y", 0)]
        # register pin indexing: 0=D 1=CLK
        assert ("register", "r1", 0) in c.readers("n2")
        assert ("register", "r1", 1) in c.readers("clk")


class TestSurgery:
    def test_remove_gate(self):
        c = small_circuit()
        c.remove_gate("g3")
        assert "g3" not in c.gates
        assert c.driver("y") is None
        assert not is_valid(c)  # output y now undriven

    def test_replace_net(self):
        c = small_circuit()
        n = c.replace_net("a", "b")
        assert n == 2  # g1 pin and g3 pin
        assert c.gates["g1"].inputs == ["b", "b"]

    def test_replace_net_on_register_pins(self):
        c = Circuit()
        c.add_input("d")
        c.add_input("clk")
        c.add_input("e")
        c.add_register(d="d", q="q", clk="clk", en="e", sr="e", name="r")
        n = c.replace_net("e", "d")
        assert n == 2
        r = c.registers["r"]
        assert r.en == "d" and r.sr == "d"

    def test_replace_net_output_port(self):
        c = small_circuit()
        c.replace_net("y", "q1")
        assert c.outputs == ["q1"]

    def test_rewire_gate_output(self):
        c = small_circuit()
        g = c.gates["g3"]
        c.rewire_gate_output(g, "y2")
        assert c.driver("y2") == ("gate", "g3")
        assert c.driver("y") is None

    def test_clone_independence(self):
        c = small_circuit()
        d = c.clone()
        d.remove_gate("g3")
        assert "g3" in c.gates
        check_circuit(c)


class TestTopoOrder:
    def test_respects_dependencies(self):
        c = small_circuit()
        order = [g.name for g in c.topo_gates()]
        assert order.index("g1") < order.index("g2")

    def test_registers_break_cycles(self):
        c = Circuit()
        c.add_input("clk")
        c.add_input("a")
        # q feeds g which feeds register d: sequential loop, no comb cycle
        c.add_gate(GateFn.AND, ["q", "a"], "n", name="g")
        c.add_register(d="n", q="q", clk="clk", name="r")
        c.add_output("q")
        order = c.topo_gates()
        assert [g.name for g in order] == ["g"]
        check_circuit(c)

    def test_combinational_cycle_detected(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate(GateFn.AND, ["a", "n2"], "n1", name="g1")
        c.add_gate(GateFn.NOT, ["n1"], "n2", name="g2")
        with pytest.raises(NetlistError):
            c.topo_gates()

    def test_deep_chain_no_recursion_limit(self):
        c = Circuit()
        c.add_input("a")
        prev = "a"
        for i in range(5000):
            prev = c.add_gate(GateFn.NOT, [prev]).output
        c.add_output(prev)
        assert len(c.topo_gates()) == 5000

    def test_transitive_fanin(self):
        c = small_circuit()
        cone = [g.name for g in c.transitive_fanin_gates(["n2"])]
        assert cone == ["g1", "g2"]


class TestQueries:
    def test_nets(self):
        c = small_circuit()
        assert {"a", "b", "clk", "n1", "n2", "q1", "y"} <= c.nets()

    def test_clock_and_control_nets(self):
        c = Circuit()
        c.add_input("clk")
        c.add_input("clk2")
        c.add_input("e")
        c.add_input("d")
        c.add_register(d="d", clk="clk", en="e")
        c.add_register(d="d", clk="clk2")
        assert c.clock_nets() == ["clk", "clk2"]
        assert c.control_nets() == ["e"]

    def test_map_nets_renames_consistently(self):
        c = small_circuit()
        c.map_nets(lambda n: "p_" + n)
        assert c.inputs == ["p_a", "p_b", "p_clk"]
        assert c.driver("p_n1") == ("gate", "g1")
        check_circuit(c)
