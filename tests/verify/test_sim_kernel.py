"""Differential tests: bit-parallel kernel vs the scalar simulator.

The kernel's contract is bit-identical lane-by-lane agreement with
:class:`~repro.logic.simulate.SequentialSimulator` on any circuit,
initial state, and stimulus — including X propagation, the exact
completion semantics of wide gates, and the generic-register priority
chain (AR over SR over EN over hold).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.sim import (
    BitSimulator,
    broadcast,
    compile_circuit,
    pack_lanes,
    pack_vectors,
    unpack_lane,
)
from repro.logic.simulate import SequentialSimulator
from repro.logic.ternary import T0, T1, TX
from repro.netlist import Circuit, GateFn

from tests.strategies import circuits

TERNARY = st.sampled_from([T0, T1, TX])


def lane_stimulus(draw, inputs, cycles, lanes):
    """Per-lane scalar stimulus: [cycle][lane] -> {net: value}."""
    return [
        [
            {net: draw(TERNARY) for net in inputs}
            for _ in range(lanes)
        ]
        for _ in range(cycles)
    ]


@st.composite
def circuit_and_run(draw, lanes: int = 7, max_cycles: int = 5):
    circuit = draw(circuits())
    cycles = draw(st.integers(min_value=1, max_value=max_cycles))
    stim = lane_stimulus(draw, circuit.inputs, cycles, lanes)
    return circuit, stim


@settings(max_examples=60, deadline=None)
@given(circuit_and_run())
def test_bits_matches_scalar_lane_by_lane(case):
    circuit, stim = case
    lanes = len(stim[0])
    bits = BitSimulator(compile_circuit(circuit), lanes=lanes)
    scalars = [SequentialSimulator(circuit) for _ in range(lanes)]
    for vectors in stim:
        words = bits.step(pack_vectors(vectors))
        for lane, vec in enumerate(vectors):
            expect = scalars[lane].step(vec)
            got = bits.output_lane(words, lane)
            for net in circuit.outputs:
                assert got[net] == expect[net], (
                    f"lane {lane} output {net!r}: "
                    f"bits={got[net]} scalar={expect[net]}"
                )


@settings(max_examples=30, deadline=None)
@given(circuits(), st.data())
def test_bits_matches_scalar_from_overridden_state(circuit, data):
    if not circuit.registers:
        return
    state = {
        name: data.draw(TERNARY) for name in circuit.registers
    }
    vec = {net: data.draw(TERNARY) for net in circuit.inputs}
    bits = BitSimulator(circuit, lanes=3, state=state)
    scalar = SequentialSimulator(circuit, state=dict(state))
    words = bits.step(pack_vectors([vec, vec, vec]))
    expect = scalar.step(vec)
    for lane in range(3):
        got = bits.output_lane(words, lane)
        for net in circuit.outputs:
            assert got[net] == expect[net]


def test_pack_unpack_roundtrip():
    values = [T0, T1, TX, T1, T0, TX, TX, T1]
    words = pack_lanes(values)
    v, x = words
    assert v & x == 0  # canonical encoding
    assert [unpack_lane(words, i) for i in range(len(values))] == values


def test_broadcast_words():
    full = (1 << 5) - 1
    assert broadcast(T1, full) == (full, 0)
    assert broadcast(T0, full) == (0, 0)
    assert broadcast(TX, full) == (0, full)


def test_wide_gate_unknown_guard_matches_scalar():
    # 14 inputs > MAX_EXACT_UNKNOWNS (12): with all inputs X the scalar
    # evaluator gives up and returns X even for a constant-ish table;
    # the kernel's bit-sliced counter must reproduce that exactly
    c = Circuit("wide")
    c.add_input("clk")
    ins = [c.add_input(f"i{k}") for k in range(14)]
    wide = c.add_gate(GateFn.AND, ins)
    out = c.add_gate(GateFn.OR, [wide.output, ins[0]]).output
    c.add_output(out)

    bits = BitSimulator(c, lanes=2)
    scalar = SequentialSimulator(c)
    for vec in (
        {n: TX for n in ins},
        {**{n: T1 for n in ins}, ins[3]: TX},
        {n: T1 for n in ins},
    ):
        words = bits.step(pack_vectors([vec, vec]))
        expect = scalar.step(vec)
        assert bits.output_lane(words, 0)[out] == expect[out]
        assert bits.output_lane(words, 1)[out] == expect[out]


def test_compiled_circuit_is_reusable_across_simulators():
    c = Circuit("reuse")
    c.add_input("clk")
    a = c.add_input("a")
    g = c.add_gate(GateFn.NOT, [a])
    c.add_register(d=g.output, q=c.new_net("q"), clk="clk")
    c.add_output("q")
    cc = compile_circuit(c)
    s1 = BitSimulator(cc, lanes=1)
    s2 = BitSimulator(cc, lanes=1)
    stim = pack_vectors([{"a": T0}])
    r1 = [s1.step(stim) for _ in range(3)]
    r2 = [s2.step(stim) for _ in range(3)]
    assert r1 == r2
