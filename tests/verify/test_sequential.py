"""The production sequential checker: verdicts, determinism,
counterexamples, and shrinking."""

from __future__ import annotations

from repro.logic.ternary import T0, T1, TX
from repro.netlist import Circuit, GateFn
from repro.verify import (
    SequentialCheckResult,
    StimulusPlan,
    VerificationError,
    check_sequential,
    replay,
    shrink_counterexample,
)


def toggle_pair():
    """A toggling register behind a sync reset, plus a broken clone
    whose reset value is flipped (differs from cycle 1 on)."""
    good = Circuit("good")
    good.add_input("clk")
    good.add_input("rst")
    q = good.new_net("q")
    inv = good.add_gate(GateFn.NOT, [q])
    good.add_register(d=inv.output, q=q, clk="clk", sr="rst", sval=T0)
    good.add_output(q)
    bad = good.clone()
    next(iter(bad.registers.values())).sval = T1
    return good, bad


def test_equivalent_clone_passes():
    good, _ = toggle_pair()
    result = check_sequential(good, good.clone(), cycles=16)
    assert result.equivalent
    assert result.cycles == 16
    assert result.lanes >= 16  # dedicated lanes grow the budget


def test_flipped_reset_is_caught_with_counterexample():
    good, bad = toggle_pair()
    result = check_sequential(good, bad, cycles=16)
    assert not result.equivalent
    assert result.stimulus is not None and len(result.stimulus) >= 2
    assert result.lane is not None
    # the stored counterexample replays to exactly the reported failure
    assert replay(good, bad, result.stimulus) == result.counterexample


def test_checker_is_deterministic_in_the_seed():
    good, bad = toggle_pair()
    a = check_sequential(good, bad, cycles=16, seed=7)
    b = check_sequential(good, bad, cycles=16, seed=7)
    assert (a.equivalent, a.reason, a.stimulus, a.lane) == (
        b.equivalent, b.reason, b.stimulus, b.lane
    )
    plan_a = StimulusPlan(good, bad, 12, seed=3, lanes=64)
    plan_b = StimulusPlan(good, bad, 12, seed=3, lanes=64)
    assert plan_a.words == plan_b.words


def test_scalar_oracle_agrees_with_bits():
    good, bad = toggle_pair()
    for pair in ((good, good.clone()), (good, bad)):
        bits = check_sequential(*pair, cycles=12, shrink=False)
        scalar = check_sequential(
            *pair, cycles=12, shrink=False, engine="scalar"
        )
        assert bits.equivalent == scalar.equivalent
        assert bits.reason == scalar.reason


def test_input_interface_mismatch_rejected():
    good, _ = toggle_pair()
    extra = good.clone()
    extra.add_input("spurious")
    result = check_sequential(good, extra, cycles=4)
    assert not result.equivalent
    assert "input interface mismatch" in result.reason
    assert "spurious" in result.reason


def test_output_count_mismatch_rejected():
    good, _ = toggle_pair()
    fewer = good.clone()
    fewer.outputs.pop()
    result = check_sequential(good, fewer, cycles=4)
    assert not result.equivalent


def test_x_in_original_exempts_transformed():
    # the original drives its output X forever (reset-free register);
    # refinement lets the transformed circuit pick any value there
    orig = Circuit("orig")
    orig.add_input("clk")
    a = orig.add_input("a")
    q = orig.new_net("q")
    orig.add_register(d=q, q=q, clk="clk")  # never leaves X
    out = orig.add_gate(GateFn.AND, [q, a]).output
    orig.add_output(out)

    conc = Circuit("conc")
    conc.add_input("clk")
    a2 = conc.add_input("a")
    out2 = conc.add_gate(GateFn.AND, [a2, a2]).output
    conc.add_output(out2)
    result = check_sequential(orig, conc, cycles=8)
    assert result.equivalent


def test_shrinker_minimises_and_confirms():
    good, bad = toggle_pair()
    raw = check_sequential(good, bad, cycles=32, shrink=False)
    assert not raw.equivalent
    shrunk = shrink_counterexample(good, bad, raw.stimulus)
    assert shrunk is not None
    stimulus, failure = shrunk
    assert len(stimulus) <= len(raw.stimulus)
    assert replay(good, bad, stimulus) == failure


def test_shrinker_returns_none_for_passing_stimulus():
    good, _ = toggle_pair()
    plan = StimulusPlan(good, good, 4, seed=0, lanes=64)
    stim = [plan.lane_vector(t, 0) for t in range(5)]
    assert shrink_counterexample(good, good.clone(), stim) is None


def test_verification_error_carries_the_check():
    check = SequentialCheckResult(False, "boom")
    err = VerificationError(check)
    assert err.check is check
    assert "boom" in str(err)
