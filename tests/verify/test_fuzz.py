"""The differential fuzzer: pipeline mode, mutation mode, determinism."""

from __future__ import annotations

from repro.netlist import check_circuit
from repro.verify import (
    MUTATION_KINDS,
    fuzz_run,
    inject_mutation,
    mutate_one,
    random_spec,
)


def test_pipeline_fuzz_clean_on_fixed_seeds():
    report = fuzz_run(rounds=4, seed=0, cycles=32)
    assert report.rounds == 4
    assert report.ok, [
        (c.seed, c.error or c.check.reason) for c in report.failures
    ]


def test_mutation_fuzz_kills_every_confirmed_mutant():
    report = fuzz_run(rounds=6, seed=0, cycles=32, mutate=True)
    assert report.ok, [
        (c.seed, c.mutation, c.error) for c in report.failures
    ]
    assert report.confirmed >= 1  # the seeds must actually exercise kills
    assert report.kill_rate == 1.0


def test_inject_mutation_is_deterministic_and_valid():
    from repro.synth import generate

    circuit = generate(random_spec(2)).circuit
    first = inject_mutation(circuit, seed=5)
    second = inject_mutation(circuit, seed=5)
    assert first is not None and second is not None
    mutant, description = first
    assert description == second[1]
    check_circuit(mutant)  # mutants are structurally valid by contract
    kind = description.split(":")[0]
    assert kind in MUTATION_KINDS + ("force_reset",)
    # the input circuit is never modified
    check_circuit(circuit)


def test_mutate_one_reports_oracle_confirmation():
    case = mutate_one(seed=1, cycles=32)
    assert case.error is None
    assert case.mutation is not None
    if case.confirmed:
        assert case.killed and case.ok


def test_time_budget_stops_early():
    report = fuzz_run(rounds=1000, seed=0, cycles=8, time_budget=0.01)
    assert 1 <= report.rounds < 1000


def test_random_spec_is_stable():
    assert random_spec(3).__dict__ == random_spec(3).__dict__
