"""Verification wired through flows, the CLI, and the batch service."""

from __future__ import annotations

import pytest

from repro.flows import baseline_flow, retime_flow
from repro.service.jobs import RetimeJob, execute_job
from repro.synth import generate
from repro.tools import cli
from repro.verify import SequentialCheckResult, VerificationError
from repro.verify.fuzz import random_spec

DESIGN = generate(random_spec(4)).circuit


def test_retime_flow_verify_stage():
    result = retime_flow(DESIGN, verify=True, verify_cycles=24)
    assert result.verify is not None and result.verify.equivalent
    assert result.verify.cycles == 24
    assert "verify" in result.timings
    assert result.timings["verify"] <= result.timings["total"]


def test_baseline_flow_verify_stage():
    result = baseline_flow(DESIGN, verify=True, verify_cycles=24)
    assert result.verify is not None and result.verify.equivalent
    assert "verify" in result.timings


def test_flow_without_verify_has_no_stage():
    result = retime_flow(DESIGN)
    assert result.verify is None
    assert "verify" not in result.timings


def test_flow_raises_verification_error_on_mismatch(monkeypatch):
    from repro.flows import script

    def fake_check(original, transformed, cycles=64):
        return SequentialCheckResult(False, "injected mismatch")

    monkeypatch.setattr(script, "check_sequential", fake_check)
    with pytest.raises(VerificationError, match="injected mismatch"):
        retime_flow(DESIGN, verify=True)


# -- service ----------------------------------------------------------- #


def _job(**kw) -> RetimeJob:
    from repro.netlist import write_blif

    return RetimeJob(netlist=write_blif(DESIGN), **kw)


def test_job_key_depends_on_verify_options():
    plain = _job()
    verifying = _job(verify=True)
    assert plain.canonical_key != verifying.canonical_key
    assert verifying.options()["verify"] is True
    assert verifying.options()["verify_cycles"] == 64
    # verify_cycles is irrelevant (and un-keyed) when verify is off
    assert plain.canonical_key == _job(verify_cycles=32).canonical_key


def test_job_rejects_malformed_verify_options():
    # must be rejected at construction (the HTTP layer maps this to 400),
    # not discovered as a crash inside a worker
    with pytest.raises(ValueError, match="verify must be a bool"):
        _job(verify="maybe")
    with pytest.raises(ValueError, match="verify_cycles"):
        _job(verify=True, verify_cycles=0)
    with pytest.raises(ValueError, match="verify_cycles"):
        _job(verify=True, verify_cycles="64")


def test_execute_job_records_verify_metrics():
    result = execute_job(_job(verify=True, verify_cycles=24))
    assert result.ok
    verdict = result.metrics["verify"]
    assert verdict["equivalent"] is True
    assert verdict["cycles"] == 24
    assert verdict["lanes"] >= 24
    assert verdict["seconds"] >= 0.0


def test_execute_job_fails_on_verification_mismatch(monkeypatch):
    from repro.service import jobs

    def fake_check(original, transformed, cycles=64):
        return SequentialCheckResult(False, "injected mismatch")

    monkeypatch.setattr(jobs, "check_sequential", fake_check)
    with pytest.raises(VerificationError, match="injected mismatch"):
        execute_job(_job(verify=True))


# -- CLI --------------------------------------------------------------- #


def test_cli_verify_flag(tmp_path, capsys):
    from repro.netlist import write_blif

    path = tmp_path / "design.blif"
    path.write_text(write_blif(DESIGN))
    rc = cli.main([str(path), "--verify", "--verify-cycles", "24"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "verified: 24 cycles" in out


def test_cli_verify_failure_exits_nonzero(tmp_path, capsys, monkeypatch):
    from repro.netlist import write_blif

    def fake_check(original, transformed, cycles=64):
        return SequentialCheckResult(False, "injected mismatch")

    monkeypatch.setattr(cli, "check_sequential", fake_check)
    path = tmp_path / "design.blif"
    path.write_text(write_blif(DESIGN))
    rc = cli.main([str(path), "--verify"])
    err = capsys.readouterr().err
    assert rc == 1
    assert "injected mismatch" in err


def test_cli_fuzz_subcommand(capsys):
    rc = cli.main(["fuzz", "--rounds", "2", "--cycles", "16", "-q"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "2 rounds, 0 failures" in out
