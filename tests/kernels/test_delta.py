"""Kernel CP/Δ sweeps vs the dict ``compute_delta`` — bit-identical.

Equality here is exact (floats included): the kernels replicate the
dict engine's iteration orders and float addition order, which is what
lets the lazy constraint generators above them emit identical
constraint sets.
"""

from __future__ import annotations

import pytest

from repro.graph import HOST, GraphError, RetimingGraph
from repro.kernels import compile_graph, delta_sweep, refresh
from repro.retime.feas import compute_delta
from repro.retime.minperiod import _min_period_dict
from tests.retime.helpers import correlator, random_graph


def _assert_sweeps_equal(graph, r_dict):
    cg = compile_graph(graph)
    ks = delta_sweep(cg, cg.r_array(r_dict))
    ds = compute_delta(graph, r_dict)
    assert {cg.names[i]: ks.delta[i] for i in range(cg.n)} == ds.delta
    pred = {
        cg.names[i]: (cg.names[p] if p >= 0 else None)
        for i, p in enumerate(ks.pred)
    }
    assert pred == ds.pred
    assert [cg.names[i] for i in ks.order] == ds.order
    assert ks.period == ds.period
    return cg, ks


def test_correlator_zero_sweep():
    g = correlator()
    _, ks = _assert_sweeps_equal(g, {})
    assert ks.period == 24.0


def test_correlator_min_period_retiming():
    g = correlator()
    best = _min_period_dict(g, None, 1e-6)
    assert best.phi == 13.0
    _assert_sweeps_equal(g, best.r)


@pytest.mark.parametrize("seed", range(6))
def test_random_graphs_zero_and_retimed(seed):
    g = random_graph(seed, n_vertices=12, n_edges=30)
    _assert_sweeps_equal(g, {})
    best = _min_period_dict(g, None, 1e-6)
    _assert_sweeps_equal(g, best.r)


def test_trace_start_matches_dict():
    g = correlator()
    cg = compile_graph(g)
    ks = delta_sweep(cg, [0] * cg.n)
    ds = compute_delta(g, {})
    for i, name in enumerate(cg.names):
        assert cg.names[ks.trace_start(i)] == ds.trace_start(name)


def test_refresh_no_change_returns_same_sweep():
    g = random_graph(2)
    cg = compile_graph(g)
    base = delta_sweep(cg, [0] * cg.n)
    assert refresh(cg, base, [0] * cg.n) is base


def _single_step_retimings(graph):
    """Legal one-vertex retimings r(v)=+1 from zero (all out-edges of v
    carry a register so no weight goes negative)."""
    out = []
    for name, vertex in graph.vertices.items():
        if not vertex.movable:
            continue
        if all(e.w >= 1 for e in graph.out_edges(name)):
            out.append(name)
    return out


@pytest.mark.parametrize("seed", range(6))
def test_refresh_equals_full_sweep(seed, monkeypatch):
    # force the cone path: small graphs normally shortcut to full sweeps
    from repro.kernels import delta as delta_module

    monkeypatch.setattr(delta_module, "_REFRESH_MIN_N", 0)
    g = random_graph(seed, n_vertices=14, n_edges=32)
    cg = compile_graph(g)
    base = delta_sweep(cg, [0] * cg.n)
    moved = _single_step_retimings(g)
    if not moved:
        pytest.skip("no legal single-vertex step in this random graph")
    for name in moved:
        r = [0] * cg.n
        r[cg.index[name]] = 1
        inc = refresh(cg, base, r)
        full = delta_sweep(cg, r)
        assert inc.delta == full.delta
        assert inc.pred == full.pred
        assert inc.r == full.r


def test_refresh_equals_full_sweep_large_graph():
    """Above the small-graph shortcut, the cone path runs for real."""
    g = random_graph(11, n_vertices=150, n_edges=420)
    cg = compile_graph(g)
    base = delta_sweep(cg, [0] * cg.n)
    for name in _single_step_retimings(g)[:8]:
        r = [0] * cg.n
        r[cg.index[name]] = 1
        inc = refresh(cg, base, r)
        full = delta_sweep(cg, r)
        assert inc.delta == full.delta
        assert inc.pred == full.pred


def test_refresh_multi_vertex_change(monkeypatch):
    from repro.kernels import delta as delta_module

    monkeypatch.setattr(delta_module, "_REFRESH_MIN_N", 0)
    g = random_graph(4, n_vertices=12, n_edges=28)
    cg = compile_graph(g)
    best = _min_period_dict(g, None, 1e-6)
    base = delta_sweep(cg, [0] * cg.n)
    r = cg.r_array(best.r)
    inc = refresh(cg, base, r)  # may fall back to a full sweep: still exact
    full = delta_sweep(cg, r)
    assert inc.delta == full.delta
    assert inc.pred == full.pred


def _forced_cone_refresh(monkeypatch):
    """Force the incremental cone path on small graphs."""
    from repro.kernels import delta as delta_module

    monkeypatch.setattr(delta_module, "_REFRESH_MIN_N", 0)
    monkeypatch.setattr(delta_module, "_REFRESH_FRACTION", 1.0)


def test_refreshed_sweep_order_is_none_but_recoverable(monkeypatch):
    """Satellite regression: ``order`` is None after a refresh, and
    ``topo_order`` recovers the exact full-sweep order on demand."""
    _forced_cone_refresh(monkeypatch)
    g = random_graph(3, n_vertices=14, n_edges=32)
    cg = compile_graph(g)
    base = delta_sweep(cg, [0] * cg.n)
    moved = _single_step_retimings(g)
    if not moved:
        pytest.skip("no legal single-vertex step in this random graph")
    r = [0] * cg.n
    r[cg.index[moved[0]]] = 1
    inc = refresh(cg, base, r)
    full = delta_sweep(cg, r)
    if inc.order is None:
        # the cone path ran: period and order must still be usable
        assert inc.period == full.period
        assert inc.topo_order(cg) == full.order
        # recomputed order is cached on the sweep
        assert inc.order == full.order
    # full sweeps hand back their own order without recomputation
    assert full.topo_order(cg) is full.order


def test_constraint_generation_off_refreshed_sweep(monkeypatch):
    """The min-area lazy loop's constraint scan (trace_start over the
    topo order) produces identical constraints from a refreshed sweep
    and from a full sweep at the same retiming."""
    _forced_cone_refresh(monkeypatch)
    g = random_graph(7, n_vertices=20, n_edges=48)
    cg = compile_graph(g)
    base = delta_sweep(cg, [0] * cg.n)
    moved = _single_step_retimings(g)
    if not moved:
        pytest.skip("no legal single-vertex step in this random graph")
    r = [0] * cg.n
    r[cg.index[moved[0]]] = 1
    inc = refresh(cg, base, r)
    full = delta_sweep(cg, r)

    def constraints(sweep):
        limit = sweep.period / 2  # force some violations
        return [
            (sweep.trace_start(v), v)
            for v in sweep.topo_order(cg)
            if sweep.delta[v] > limit and not cg.is_mirror[v]
        ]

    assert constraints(inc) == constraints(full)


def test_refresh_extra_seeds_propagates_delay_patch(monkeypatch):
    """After patching a vertex delay in place, ``extra_seeds`` makes the
    refresh re-sweep the patched vertex's forward cone; without it the
    r-diff seeding sees no change and returns stale values."""
    _forced_cone_refresh(monkeypatch)
    g = random_graph(5, n_vertices=16, n_edges=36)
    cg = compile_graph(g)
    r = [0] * cg.n
    base = delta_sweep(cg, r)
    # pick a movable vertex and bump its delay
    target = next(
        i for i in range(cg.n) if cg.movable[i] and not cg.is_mirror[i]
    )
    cg.delay[target] += 3.0
    full = delta_sweep(cg, r)
    assert full.delta != base.delta  # the patch is visible
    stale = refresh(cg, base, r)
    assert stale is base  # r unchanged: refresh alone cannot see it
    inc = refresh(cg, base, r, extra_seeds={target})
    assert inc.delta == full.delta
    assert inc.pred == full.pred
    assert inc.period == full.period


def test_negative_weight_error_is_identical():
    g = correlator()
    cg = compile_graph(g)
    r_dict = {"v5": -1}  # v4->v5 has w=0: retimed weight -1
    with pytest.raises(GraphError) as dict_err:
        compute_delta(g, r_dict)
    with pytest.raises(GraphError) as kernel_err:
        delta_sweep(cg, cg.r_array(r_dict))
    assert str(kernel_err.value) == str(dict_err.value)


def test_cyclic_zero_subgraph_error_is_identical():
    g = RetimingGraph("loop")
    g.add_vertex("a", 1.0)
    g.add_vertex("b", 1.0)
    g.add_edge("a", "b", 0)
    g.add_edge("b", "a", 0)
    cg = compile_graph(g)
    with pytest.raises(GraphError) as dict_err:
        compute_delta(g, {})
    with pytest.raises(GraphError) as kernel_err:
        delta_sweep(cg, [0, 0])
    assert str(kernel_err.value) == str(dict_err.value)


def test_host_edges_skipped_unless_combinational():
    g = correlator()
    g.combinational_host = False  # flip the environment model
    _assert_sweeps_equal(g, {})
    cg = compile_graph(g)
    assert not cg.through_host
    # explicit override mirrors the dict through_host argument
    ks = delta_sweep(cg, [0] * cg.n, through_host=True)
    ds = compute_delta(g, {}, through_host=True)
    assert {cg.names[i]: ks.delta[i] for i in range(cg.n)} == ds.delta


def test_order_reuse_in_dict_engine():
    """compute_delta accepts a prior topological order and must produce
    the identical sweep with or without it; stale orders are rejected."""
    g = random_graph(8, n_vertices=12, n_edges=26)
    fresh = compute_delta(g, {})
    again = compute_delta(g, {}, order=fresh.order)
    assert again.delta == fresh.delta
    assert again.pred == fresh.pred
    assert again.order == fresh.order
    # an order from a different retiming may be stale: result still exact
    best = _min_period_dict(g, None, 1e-6)
    moved = compute_delta(g, best.r, order=fresh.order)
    reference = compute_delta(g, best.r)
    assert moved.delta == reference.delta
    assert moved.pred == reference.pred
    # wrong length / unknown names fall back cleanly too
    short = compute_delta(g, {}, order=fresh.order[:-1])
    assert short.delta == fresh.delta
