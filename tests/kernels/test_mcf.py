"""IntMinCostFlow vs the named-node MinCostFlow oracle.

Node ids in the dict engine follow ``add_node`` insertion order and its
Dijkstra breaks ties on (distance, node id) — the same keys the int
kernel uses — so building both networks in the same order must yield
identical potentials (the LP dual the retiming caller consumes).
"""

from __future__ import annotations

import random

import pytest

from repro.kernels import IntMinCostFlow
from repro.kernels.mcf import FlowInfeasibleError as KernelInfeasible
from repro.retime.mincostflow import INF, FlowInfeasibleError, MinCostFlow


def _build_pair(seed: int, n: int = 8):
    rng = random.Random(seed)
    sup = [0] * n
    for _ in range(3):
        a, b = rng.sample(range(n), 2)
        amount = rng.randint(1, 4)
        sup[a] += amount
        sup[b] -= amount
    oracle = MinCostFlow()
    kernel = IntMinCostFlow(n)
    for i in range(n):
        oracle.add_node(str(i), sup[i])
        kernel.supply[i] = sup[i]
    arcs = []
    for i in range(n):  # uncapacitated ring: always feasible
        arcs.append((i, (i + 1) % n, rng.randint(0, 5), INF))
    for _ in range(2 * n):
        u, v = rng.sample(range(n), 2)
        cap = INF if rng.random() < 0.5 else float(rng.randint(1, 5))
        arcs.append((u, v, rng.randint(0, 8), cap))
    for u, v, cost, cap in arcs:
        oracle.add_arc(str(u), str(v), cost, cap)
        kernel.add_arc(u, v, cost, cap)
    return oracle, kernel, n


@pytest.mark.parametrize("seed", range(10))
def test_potentials_identical(seed):
    oracle, kernel, n = _build_pair(seed)
    oracle.solve()
    kernel.solve()
    expected = oracle.potentials()
    assert kernel.potential == [expected[str(i)] for i in range(n)]


@pytest.mark.parametrize("seed", range(4))
def test_initial_potentials_respected(seed):
    oracle, kernel, n = _build_pair(seed)
    # a uniform shift keeps every reduced cost unchanged, so it is valid
    oracle.solve({str(i): 1.0 for i in range(n)})
    kernel.solve([1.0] * n)
    expected = oracle.potentials()
    assert kernel.potential == [expected[str(i)] for i in range(n)]


def test_unbalanced_supplies_rejected():
    oracle = MinCostFlow()
    oracle.add_node("a", 1)
    oracle.add_node("b", 0)
    oracle.add_arc("a", "b", 1)
    with pytest.raises(FlowInfeasibleError):
        oracle.solve()
    kernel = IntMinCostFlow(2)
    kernel.supply[0] = 1
    kernel.add_arc(0, 1, 1)
    with pytest.raises(KernelInfeasible):
        kernel.solve()


def test_negative_reduced_cost_rejected():
    oracle = MinCostFlow()
    oracle.add_node("a", 1)
    oracle.add_node("b", -1)
    oracle.add_arc("a", "b", -2)
    with pytest.raises(ValueError):
        oracle.solve()
    kernel = IntMinCostFlow(2)
    kernel.supply = [1, -1]
    kernel.add_arc(0, 1, -2)
    with pytest.raises(ValueError):
        kernel.solve()
    # the same arc is fine once the potentials absorb its cost
    kernel2 = IntMinCostFlow(2)
    kernel2.supply = [1, -1]
    kernel2.add_arc(0, 1, -2)
    kernel2.solve([0.0, -2.0])
    oracle2 = MinCostFlow()
    oracle2.add_node("a", 1)
    oracle2.add_node("b", -1)
    oracle2.add_arc("a", "b", -2)
    oracle2.solve({"a": 0.0, "b": -2.0})
    expected = oracle2.potentials()
    assert kernel2.potential == [expected["a"], expected["b"]]


def test_unreachable_demand_rejected():
    oracle = MinCostFlow()
    oracle.add_node("a", 1)
    oracle.add_node("b", -1)  # no arc a->b at all
    with pytest.raises(FlowInfeasibleError):
        oracle.solve()
    kernel = IntMinCostFlow(2)
    kernel.supply = [1, -1]
    with pytest.raises(KernelInfeasible):
        kernel.solve()
