"""Property-based kernel/dict differential tests (the ISSUE contract).

The kernels must be *bit-identical* to the dict engines: same minimum
period, same retiming assignment, same final netlist bytes — on random
mc-graphs, on random synchronous circuits, and regardless of
``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings

from repro import kernels
from repro.mcretime import mc_retime
from repro.mcretime.relocate import RelocationError
from repro.netlist import write_blif
from repro.retime.minarea import min_area
from repro.retime.minperiod import feasible_retiming, min_period
from repro.timing import XC4000E_DELAY
from tests.retime.helpers import correlator, random_graph
from tests.strategies import circuits

REPO_ROOT = Path(__file__).resolve().parents[2]


# --------------------------------------------------------------------- #
# flag plumbing


def test_resolve_precedence():
    previous = kernels.set_kernels_enabled(True)
    try:
        assert kernels.resolve(None) is True
        assert kernels.resolve(False) is False
        kernels.set_kernels_enabled(False)
        assert kernels.resolve(None) is False
        assert kernels.resolve(True) is True
    finally:
        kernels.set_kernels_enabled(previous)


def test_use_kernels_context_manager_restores():
    before = kernels.kernels_enabled()
    with kernels.use_kernels(not before):
        assert kernels.kernels_enabled() is not before
    assert kernels.kernels_enabled() is before
    with pytest.raises(RuntimeError):
        with kernels.use_kernels(not before):
            raise RuntimeError("boom")
    assert kernels.kernels_enabled() is before  # restored on error too


def test_expect_equal_raises_mismatch():
    kernels.expect_equal("demo", 1, 1)
    with pytest.raises(kernels.KernelMismatchError) as err:
        kernels.expect_equal("demo", 1, 2)
    assert "demo" in str(err.value)
    assert issubclass(kernels.KernelMismatchError, AssertionError)


# --------------------------------------------------------------------- #
# graph-level agreement


@pytest.mark.parametrize("seed", [1, 2, 5, 9, 13])
def test_min_period_agreement_on_random_graphs(seed):
    g = random_graph(seed, n_vertices=14, n_edges=34)
    with kernels.use_kernels(True):
        fast = min_period(g)
    with kernels.use_kernels(False):
        slow = min_period(g)
    assert fast.phi == slow.phi
    assert fast.r == slow.r
    assert fast.probes == slow.probes
    assert fast.rounds == slow.rounds


@pytest.mark.parametrize("seed", [1, 5, 9])
def test_min_area_agreement_on_random_graphs(seed):
    g = random_graph(seed, n_vertices=12, n_edges=28)
    phi = min_period(g, use_kernels=False).phi
    fast = min_area(g, phi, use_kernels=True)
    slow = min_area(g, phi, use_kernels=False)
    assert fast.r == slow.r
    assert fast.registers == slow.registers
    assert fast.period == slow.period
    assert fast.rounds == slow.rounds
    assert fast.constraints == slow.constraints


def test_feasible_retiming_agreement():
    g = correlator()
    for phi in (12.0, 13.0, 20.0, 24.0):
        fast = feasible_retiming(g, phi, use_kernels=True)
        slow = feasible_retiming(g, phi, use_kernels=False)
        assert fast == slow
    assert feasible_retiming(g, 12.0, use_kernels=True) is None


def test_differential_check_mode_passes_on_real_solves():
    """REPRO_KERNEL_CHECK's code path: kernel + oracle both run and the
    comparison holds on every public entry point."""
    g = random_graph(3, n_vertices=10, n_edges=24)
    previous = kernels.set_kernel_check(True)
    try:
        with kernels.use_kernels(True):
            result = min_period(g)
            min_area(g, result.phi)
            feasible_retiming(g, result.phi)
    finally:
        kernels.set_kernel_check(previous)


# --------------------------------------------------------------------- #
# circuit-level agreement (the end-to-end property)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(circuit=circuits(max_gates=10, max_registers=4))
def test_mc_retime_netlists_bit_identical(circuit):
    # Some generated circuits hit known engine limits (e.g. a relocation
    # deadlock).  That is not a kernel/dict divergence — the property
    # then is that both engines fail identically.
    try:
        fast = mc_retime(circuit, use_kernels=True)
    except RelocationError as fast_err:
        with pytest.raises(RelocationError) as slow_err:
            mc_retime(circuit, use_kernels=False)
        assert str(slow_err.value) == str(fast_err)
        return
    slow = mc_retime(circuit, use_kernels=False)
    assert fast.r == slow.r
    assert fast.period_after == slow.period_after
    assert fast.ff_after == slow.ff_after
    assert fast.area_registers == slow.area_registers
    assert write_blif(fast.circuit) == write_blif(slow.circuit)


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(circuit=circuits(max_gates=8, max_registers=3))
def test_mc_retime_under_check_mode(circuit):
    """Every kernel call inside the engine survives differential mode."""
    previous = kernels.set_kernel_check(True)
    try:
        mc_retime(circuit, use_kernels=True)
    except RelocationError:
        pass  # known engine limit; check mode itself raised no mismatch
    finally:
        kernels.set_kernel_check(previous)


# --------------------------------------------------------------------- #
# hash-seed independence

_HASHSEED_SCRIPT = """
import hashlib
from repro.mcretime import mc_retime
from repro.netlist import read_blif, write_blif
from repro.timing import XC4000E_DELAY

BLIF = '''
.model seedcheck
.inputs clk a b c
.outputs out1 out2
.names a b n1
11 1
.names n1 c n2
10 1
.names n2 q1 n3
01 1
.mcff r1 d=n3 q=q1 clk=clk
.mcff r2 d=n2 q=q2 clk=clk en=c
.mcff r3 d=n1 q=q3 clk=clk sr=a sval=0
.names q1 q2 out1
11 1
.names q3 n2 out2
10 1
.end
'''

circuit = read_blif(BLIF)
fast = mc_retime(circuit, XC4000E_DELAY, use_kernels=True)
slow = mc_retime(circuit, XC4000E_DELAY, use_kernels=False)
print(hashlib.sha256(write_blif(fast.circuit).encode()).hexdigest())
print(hashlib.sha256(write_blif(slow.circuit).encode()).hexdigest())
"""


def test_retimed_netlist_stable_across_hash_seeds(tmp_path):
    """Kernel and dict engines produce the same bytes under different
    PYTHONHASHSEED values — no hidden set/dict-order dependence."""
    script = tmp_path / "hashseed_probe.py"
    script.write_text(_HASHSEED_SCRIPT)
    digests = set()
    for seed in ("0", "1", "2"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            timeout=180,
        )
        assert proc.returncode == 0, proc.stderr
        fast_digest, slow_digest = proc.stdout.split()
        assert fast_digest == slow_digest  # kernel == dict within a run
        digests.add(fast_digest)
    assert len(digests) == 1  # and across interpreter hash seeds


def test_hashseed_blif_is_a_real_workload():
    """The subprocess circuit must itself exercise the retimer (guards
    against the probe silently degenerating into a no-op)."""
    from repro.netlist import read_blif

    blif = _HASHSEED_SCRIPT.split("'''")[1]
    circuit = read_blif(blif)
    result = mc_retime(circuit, XC4000E_DELAY, use_kernels=True)
    assert result.period_after <= result.period_before
    assert hashlib.sha256(write_blif(result.circuit).encode()).hexdigest()
