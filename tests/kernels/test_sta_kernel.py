"""CompiledSTA vs the dict analyzer, full and incremental modes."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.kernels import CompiledSTA, analyze_kernel
from repro.timing import UNIT_DELAY, XC4000E_DELAY
from repro.timing.sta import _analyze_dict
from tests.strategies import circuits

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _assert_results_equal(kernel, oracle):
    assert kernel.max_delay == oracle.max_delay
    assert kernel.arrival == oracle.arrival
    # the arrival dict's *insertion order* is part of the contract
    assert list(kernel.arrival) == list(oracle.arrival)
    assert kernel.critical_path == oracle.critical_path
    assert kernel.critical_sink == oracle.critical_sink


@RELAXED
@given(circuit=circuits())
def test_full_sweep_matches_dict_unit_delay(circuit):
    _assert_results_equal(
        analyze_kernel(circuit, UNIT_DELAY), _analyze_dict(circuit, UNIT_DELAY)
    )


@RELAXED
@given(circuit=circuits())
def test_full_sweep_matches_dict_xc4000e(circuit):
    _assert_results_equal(
        analyze_kernel(circuit, XC4000E_DELAY),
        _analyze_dict(circuit, XC4000E_DELAY),
    )


@RELAXED
@given(circuit=circuits(max_gates=10))
def test_incremental_update_equals_full_resweep(circuit):
    """After overriding source arrivals, ``update`` must land on exactly
    the state a full sweep with the same overrides produces."""
    sta = CompiledSTA(circuit, XC4000E_DELAY)
    sta.full_sweep()
    reference = CompiledSTA(circuit, XC4000E_DELAY)
    overrides: dict[str, float] = {}
    # walk a few sources, perturbing one more each round
    sources = [net for net in circuit.inputs if net != "clk"][:3]
    for step, net in enumerate(sources, start=1):
        overrides[net] = 1.5 * step
        sta.update({net: 1.5 * step})
        reference.full_sweep(overrides)
        assert sta.arrival == reference.arrival
        assert sta.pred == reference.pred
        k, o = sta.result(), reference.result()
        assert k.max_delay == o.max_delay
        assert k.arrival == o.arrival


def _pipeline_circuit():
    from repro.netlist import read_blif

    return read_blif(
        """
.model pipe
.inputs clk a b
.outputs out
.names a b n1
11 1
.names n1 q1 n2
10 1
.mcff r1 d=n2 q=q1 clk=clk
.mcff r2 d=n1 q=q2 clk=clk
.names q1 q2 out
01 1
.end
"""
    )


def test_update_noop_and_unknown_nets():
    c = _pipeline_circuit()
    sta = CompiledSTA(c, XC4000E_DELAY)
    sta.full_sweep()
    before = list(sta.arrival)
    # same value again: nothing is dirty, no gate re-evaluated
    q = next(iter(c.registers.values())).q
    assert sta.update({q: XC4000E_DELAY.clock_to_q}) == 0
    assert sta.arrival == before
    # unknown nets are ignored
    assert sta.update({"no-such-net": 99.0}) == 0
    assert sta.arrival == before


def test_update_dirty_region_is_partial():
    c = _pipeline_circuit()
    sta = CompiledSTA(c, XC4000E_DELAY)
    sta.full_sweep()
    q1 = c.registers["r1"].q
    evaluated = sta.update({q1: XC4000E_DELAY.clock_to_q + 2.0})
    # only the fanout cone of q1 (the output gate) re-evaluates, not all
    assert 0 < evaluated < len(sta.gate_order)
    reference = CompiledSTA(c, XC4000E_DELAY)
    reference.full_sweep({q1: XC4000E_DELAY.clock_to_q + 2.0})
    assert sta.arrival == reference.arrival


def test_compiled_sta_reachable_from_timing_package():
    from repro.timing import CompiledSTA as ReExported

    assert ReExported is CompiledSTA
