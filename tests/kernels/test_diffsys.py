"""CompiledSystem vs DifferenceSystem: identical semantics and fixed points.

The maximal non-positive solution of a difference system is unique, so
every solving strategy the kernel picks — cold SPFA, warm list
Bellman-Ford, vectorised rounds — must return exactly the dict solver's
answer.  These tests pin that down, including the forced list fallback
and forced vectorised paths.
"""

from __future__ import annotations

import random

import pytest

from repro.kernels import CompiledSystem, compile_graph
from repro.kernels import diffsys as diffsys_module
from repro.retime.constraints import DifferenceSystem
from repro.retime.minperiod import base_system
from tests.retime.helpers import correlator


def _mirrored(n_vars: int):
    names = [f"x{i}" for i in range(n_vars)]
    ds = DifferenceSystem(names)
    cs = CompiledSystem(list(names), {name: i for i, name in enumerate(names)})
    return names, ds, cs


def _add_both(names, ds, cs, u: int, v: int, b: int) -> tuple[bool, bool]:
    return ds.add(names[u], names[v], b), cs.add(u, v, b)


def _assert_same_solution(names, ds, cs):
    expected = ds.solve()
    got = cs.solve()
    if expected is None:
        assert got is None
    else:
        assert got == [expected[name] for name in names]


def _random_arcs(seed: int, n: int, m: int, lo: int, hi: int):
    rng = random.Random(seed)
    return [
        (rng.randrange(n), rng.randrange(n), rng.randint(lo, hi))
        for _ in range(m)
    ]


@pytest.mark.parametrize("seed", range(8))
def test_cold_solve_matches_dict(seed):
    names, ds, cs = _mirrored(12)
    for u, v, b in _random_arcs(seed, 12, 30, -3, 6):
        tightened_d, tightened_k = _add_both(names, ds, cs, u, v, b)
        assert tightened_d == tightened_k
    assert len(ds) == len(cs)
    _assert_same_solution(names, ds, cs)


@pytest.mark.parametrize("seed", range(6))
def test_warm_resolve_matches_fresh_dict_solve(seed):
    """Incremental re-solves from the previous fixed point must equal a
    cold dict solve at every stage — the lazy-loop contract."""
    names, ds, cs = _mirrored(10)
    # non-negative bounds: the zero vector is feasible, so stage 0 solves
    for u, v, b in _random_arcs(seed, 10, 20, 0, 5):
        _add_both(names, ds, cs, u, v, b)
    _assert_same_solution(names, ds, cs)
    rng = random.Random(seed + 1000)
    for _ in range(6):  # tighten a few arcs, re-solve warm each time
        u, v = rng.randrange(10), rng.randrange(10)
        b = rng.randint(-4, 2)
        _add_both(names, ds, cs, u, v, b)
        _assert_same_solution(names, ds, cs)
        if cs.self_negative:
            break


def test_tighten_and_dedup_semantics():
    names, ds, cs = _mirrored(4)
    assert _add_both(names, ds, cs, 0, 1, 5) == (True, True)
    # looser bound on the same pair is a no-op in both
    assert _add_both(names, ds, cs, 0, 1, 7) == (False, False)
    assert _add_both(names, ds, cs, 0, 1, 2) == (True, True)
    assert len(ds) == len(cs) == 1
    assert cs.arc_b[cs.pair[(0, 1)]] == ds.bound(names[0], names[1]) == 2
    # vacuous non-negative self-pair is dropped
    assert _add_both(names, ds, cs, 2, 2, 0) == (False, False)
    assert len(cs) == 1 and not cs.self_negative
    # negative self-pair makes the system infeasible
    assert _add_both(names, ds, cs, 3, 3, -1) == (True, True)
    assert cs.self_negative
    _assert_same_solution(names, ds, cs)  # both None


def test_negative_cycle_detected():
    names, ds, cs = _mirrored(3)
    for u, v, b in [(0, 1, -1), (1, 2, -1), (2, 0, -1)]:
        _add_both(names, ds, cs, u, v, b)
    assert ds.solve() is None
    assert cs.solve() is None
    # warm path must also detect it: feasible first, then close the cycle
    names, ds, cs = _mirrored(3)
    _add_both(names, ds, cs, 0, 1, -2)
    _add_both(names, ds, cs, 1, 2, -2)
    _assert_same_solution(names, ds, cs)
    _add_both(names, ds, cs, 2, 0, 3)  # total weight -1: negative cycle
    assert ds.solve() is None
    assert cs.solve() is None


def test_copy_is_independent():
    names, ds, cs = _mirrored(5)
    for u, v, b in _random_arcs(42, 5, 10, 0, 4):
        _add_both(names, ds, cs, u, v, b)
    before = list(cs.solve())
    clone = cs.copy()
    clone.add(0, 4, -3)
    clone.solve()
    assert cs.solve() == before  # original unaffected
    assert len(clone) >= len(cs)


def test_violated_matches_dict_check():
    names, ds, cs = _mirrored(6)
    for u, v, b in _random_arcs(9, 6, 14, -2, 4):
        _add_both(names, ds, cs, u, v, b)
    rng = random.Random(77)
    r_list = [rng.randint(-3, 3) for _ in range(6)]
    r_dict = {names[i]: r_list[i] for i in range(6)}
    got = {(names[u], names[v], b) for u, v, b in cs.violated(r_list)}
    expected = {(c.u, c.v, c.bound) for c in ds.check(r_dict)}
    assert got == expected


@pytest.mark.parametrize("seed", range(4))
def test_list_fallback_matches_vectorized(seed, monkeypatch):
    """Cold SPFA, warm list rounds and vectorised rounds all land on the
    same (unique) fixed point at every incremental stage."""

    def run():
        names, _, cs = _mirrored(10)
        for u, v, b in _random_arcs(seed, 10, 25, 0, 5):
            cs.add(u, v, b)
        stages = [list(cs.solve())]
        for u, v, b in _random_arcs(seed + 500, 10, 8, -3, 3):
            cs.add(u, v, b)
            got = cs.solve()
            stages.append(None if got is None else list(got))
            if got is None:
                break
        return stages

    default = run()
    monkeypatch.setattr(diffsys_module, "_np", None)
    forced_list = run()
    assert forced_list == default
    monkeypatch.undo()
    if diffsys_module._np is not None:
        monkeypatch.setattr(diffsys_module, "_NUMPY_MIN_ARCS", 1)
        forced_vec = run()
        assert forced_vec == default


def test_from_system_matches_dict_on_real_graph():
    g = correlator()
    cg = compile_graph(g)
    system = base_system(g)
    cs = CompiledSystem.from_system(system, cg)
    expected = system.solve()
    got = cs.solve()
    assert got == [expected[name] for name in cs.names]
    normalized = cs.normalized(got)
    assert normalized[cs.host] == 0


def test_add_variable_forks_the_shared_universe():
    g = correlator()
    cg = compile_graph(g)
    cs = CompiledSystem.from_system(base_system(g), cg)
    cs.solve()
    n_graph = len(cg.names)
    i = cs.add_variable("$extra")
    assert i == cs.n - 1
    assert len(cg.names) == n_graph  # the graph's table is untouched
    assert len(cs.dist) == cs.n  # previous solution extended
    assert cs.add_variable("$extra") == i  # idempotent
    cs.add(i, cs.index["$host"], 3)
    assert cs.solve() is not None
