"""CompiledGraph interning: ids, edge order, CSR indexes, round-trips."""

from __future__ import annotations

from repro.graph import HOST
from repro.kernels import HAVE_NUMPY, CompiledGraph, compile_graph
from tests.retime.helpers import correlator, random_graph


def test_vertex_interning_follows_insertion_order():
    g = correlator()
    cg = compile_graph(g)
    assert cg.names == list(g.vertices)
    assert cg.index == {name: i for i, name in enumerate(cg.names)}
    assert cg.n == len(g.vertices)
    assert cg.delay == [g.vertices[name].delay for name in cg.names]
    assert cg.host == cg.index[HOST]
    assert cg.through_host == g.combinational_host


def test_edge_arrays_follow_dict_iteration_order():
    g = random_graph(3)
    cg = compile_graph(g)
    edges = list(g.edges.values())
    assert cg.m == len(edges)
    assert [cg.names[u] for u in cg.eu] == [e.u for e in edges]
    assert [cg.names[v] for v in cg.ev] == [e.v for e in edges]
    assert cg.ew == [e.w for e in edges]
    assert list(cg.src_host) == [
        1 if g.vertices[e.u].kind == "host" else 0 for e in edges
    ]


def test_csr_adjacency_matches_edge_order():
    g = random_graph(7, n_vertices=10, n_edges=25)
    cg = compile_graph(g)
    for i in range(cg.n):
        out = cg.out_edges[cg.out_start[i] : cg.out_start[i + 1]]
        assert out == [k for k in range(cg.m) if cg.eu[k] == i]
        inc = cg.in_edges[cg.in_start[i] : cg.in_start[i + 1]]
        assert inc == [k for k in range(cg.m) if cg.ev[k] == i]
    assert cg.out_start[cg.n] == cg.m
    assert cg.in_start[cg.n] == cg.m


def test_movable_flags_match_graph():
    g = correlator()
    cg = compile_graph(g)
    for i, name in enumerate(cg.names):
        assert bool(cg.movable[i]) == g.vertices[name].movable
        assert bool(cg.is_mirror[i]) == (g.vertices[name].kind == "mirror")


def test_r_array_round_trip():
    g = correlator()
    cg = compile_graph(g)
    r = {"v1": 2, "v5": -1, "not-a-vertex": 9}
    dense = cg.r_array(r)
    assert dense[cg.index["v1"]] == 2
    assert dense[cg.index["v5"]] == -1
    assert sum(1 for x in dense if x) == 2  # unknown names are dropped
    back = cg.r_dict(dense)
    assert list(back) == cg.names  # vertex insertion order preserved
    assert back["v1"] == 2 and back["v5"] == -1 and back["v2"] == 0
    assert cg.r_array(None) == [0] * cg.n
    assert cg.r_array({}) == [0] * cg.n


def test_graph_compiled_method():
    g = random_graph(1)
    cg = g.compiled()
    assert isinstance(cg, CompiledGraph)
    assert cg.names == list(g.vertices)


def test_numpy_mirrors_match_lists():
    if not HAVE_NUMPY:
        return
    g = random_graph(5, n_vertices=12, n_edges=30)
    cg = compile_graph(g)
    assert cg.eu_np.tolist() == cg.eu
    assert cg.ev_np.tolist() == cg.ev
    assert cg.ew_np.tolist() == cg.ew
    assert cg.src_host_np.tolist() == [bool(b) for b in cg.src_host]
