"""Tests for the synthesis-script flows (Table 1/2/3 setups)."""

import pytest

from repro.flows import baseline_flow, decomposed_enable_flow, retime_flow
from repro.netlist import check_circuit, circuit_stats
from repro.synth import build_design
from repro.techmap import XC4000E_ARCH

SCALE = 0.35


@pytest.fixture(scope="module")
def c5_design():
    return build_design("C5", scale=SCALE)


@pytest.fixture(scope="module")
def c5_baseline(c5_design):
    return baseline_flow(c5_design.circuit)


class TestBaselineFlow:
    def test_produces_legal_netlist(self, c5_baseline):
        check_circuit(c5_baseline.circuit)
        XC4000E_ARCH.check_mapped(c5_baseline.circuit)

    def test_metrics_populated(self, c5_baseline):
        assert c5_baseline.n_ff > 0
        assert c5_baseline.n_lut > 0
        assert c5_baseline.delay > 0
        assert c5_baseline.retime is None

    def test_input_untouched(self, c5_design):
        before = c5_design.circuit.counts()
        baseline_flow(c5_design.circuit)
        assert c5_design.circuit.counts() == before

    def test_no_sync_resets_survive(self, c5_baseline):
        assert all(
            not r.has_sync_reset
            for r in c5_baseline.circuit.registers.values()
        )


class TestRetimeFlow:
    def test_never_slower_than_baseline(self, c5_design, c5_baseline):
        flow = retime_flow(c5_design.circuit, mapped=c5_baseline)
        check_circuit(flow.circuit)
        XC4000E_ARCH.check_mapped(flow.circuit)
        assert flow.delay <= c5_baseline.delay * 1.05 + 1e-9
        assert flow.retime is not None

    def test_reuses_mapped_baseline(self, c5_design, c5_baseline):
        a = retime_flow(c5_design.circuit, mapped=c5_baseline)
        b = retime_flow(c5_design.circuit)
        assert a.n_ff == b.n_ff and a.n_lut == b.n_lut

    def test_stats_recorded(self, c5_design, c5_baseline):
        flow = retime_flow(c5_design.circuit, mapped=c5_baseline)
        r = flow.retime
        assert r.steps_possible >= r.steps_moved >= 0
        assert "retime" in flow.timings and "remap" in flow.timings


class TestDecomposedEnableFlow:
    def test_no_enables_survive(self, c5_design):
        flow = decomposed_enable_flow(c5_design.circuit)
        check_circuit(flow.circuit)
        assert all(
            not r.has_enable for r in flow.circuit.registers.values()
        )

    def test_c6_is_noop_decomposition(self):
        """C6 has no load enables, so Table 3 should match Table 2 for
        it (the paper's Rlut2 = Rdelay2 = 1.00 row)."""
        design = build_design("C6", scale=0.12)
        plain = retime_flow(design.circuit)
        decomposed = decomposed_enable_flow(design.circuit)
        assert decomposed.n_lut == plain.n_lut
        assert decomposed.delay == pytest.approx(plain.delay)

    def test_decomposition_restricts_or_costs(self, c5_design, c5_baseline):
        """EN decomposition must not beat mc-retiming on both axes at
        once (the paper's core claim)."""
        with_en = retime_flow(c5_design.circuit, mapped=c5_baseline)
        without_en = decomposed_enable_flow(c5_design.circuit)
        better_delay = without_en.delay < with_en.delay - 1e-9
        better_area = (
            without_en.n_lut + without_en.n_ff
            < with_en.n_lut + with_en.n_ff
        )
        assert not (better_delay and better_area)


class TestMappingModes:
    def test_area_script_uses_fewer_or_equal_luts(self, c5_design):
        best_delay = baseline_flow(c5_design.circuit, mapping_mode="depth")
        min_area = baseline_flow(c5_design.circuit, mapping_mode="area")
        assert min_area.n_lut <= best_delay.n_lut
        # and may be slower, never structurally invalid
        XC4000E_ARCH.check_mapped(min_area.circuit)
