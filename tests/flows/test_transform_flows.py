"""Tests for the mapped pipeline / C-slow flows."""

import pytest

from repro.flows import cslow_flow, pipeline_flow
from repro.netlist import check_circuit
from repro.synth import build_datapath, build_design
from repro.techmap import XC4000E_ARCH
from repro.verify import VerificationError


@pytest.fixture(scope="module")
def ntt4():
    return build_datapath("NTT4").circuit


class TestPipelineFlow:
    def test_mapped_and_reported(self, ntt4):
        flow = pipeline_flow(ntt4, stages=2)
        check_circuit(flow.circuit)
        XC4000E_ARCH.check_mapped(flow.circuit)
        t = flow.transform
        assert t["kind"] == "pipeline" and t["stages"] == 2
        assert t["registers_inserted"] > 0
        assert t["period_after"] <= t["period_before"]
        assert t["lower_bound"] == pytest.approx(t["period_before"] / 3)
        assert sum(t["classes_before"].values()) > 0
        assert flow.accepted

    def test_verify_populates_check(self, ntt4):
        flow = pipeline_flow(ntt4, stages=1, verify=True, verify_cycles=24)
        assert flow.verify is not None and flow.verify.equivalent
        assert "verify" in flow.timings


class TestCSlowFlow:
    def test_mapped_and_reported(self, ntt4):
        flow = cslow_flow(ntt4, factor=2)
        check_circuit(flow.circuit)
        XC4000E_ARCH.check_mapped(flow.circuit)
        t = flow.transform
        assert t["kind"] == "cslow" and t["factor"] == 2
        assert t["registers_replicated"] > 0
        assert t["enables_folded"] > 0
        assert t["thread_period"] == pytest.approx(2 * t["period_after"])
        assert flow.accepted

    def test_verified_throughput_gain(self, ntt4):
        flow = cslow_flow(ntt4, factor=3, verify=True, verify_cycles=16)
        assert flow.verify is not None and flow.verify.equivalent
        assert flow.transform["throughput_gain"] > 1.0

    def test_flow_verify_gate_bites(self, ntt4):
        # the flow's verify stage checks against the *mapped base*; the
        # same checker run with the wrong latency must reject, so a
        # transform bug cannot slip through as "verified"
        from repro.flows import baseline_flow
        from repro.verify import check_pipeline

        base = baseline_flow(ntt4)
        flow = pipeline_flow(ntt4, stages=2, mapped=base)
        good = check_pipeline(base.circuit, flow.circuit, shift=2, cycles=24)
        bad = check_pipeline(base.circuit, flow.circuit, shift=1, cycles=24)
        assert good.equivalent and not bad.equivalent
