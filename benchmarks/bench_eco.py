"""Benchmark: incremental (ECO) retiming vs cold re-solves.

Replays an edit sweep over the datapath designs
(:mod:`repro.synth.datapath`): each edit re-types a carry cell into a
LUT-implemented mux (0.25 ns -> 1.6 ns under the XC4000E model — the
kind of late functional fix an ECO flow exists for), then solves the
edited design three ways:

* **cold** — a from-scratch :func:`repro.mcretime.mc_retime`;
* **first visit** — :func:`repro.eco.eco_retime` against a warm
  :class:`~repro.eco.EcoState` seeing the edit for the first time
  (prefix reused, solve re-run on the patched graph);
* **revisit** — the same edit submitted again, landing on the
  content-addressed solve cache (plan ``reuse``: relocation only).

Every incremental result is differentially checked bit-identical to
the cold solve (netlist bytes + deterministic metrics) unless
``--no-verify``.  The headline number is the **revisit speedup**
(cold median / revisit median) — the regime an ECO service lives in,
where candidate fixes are toggled, re-examined, and re-submitted.

Writes ``benchmarks/BENCH_eco.json`` (override with
``REPRO_BENCH_ECO_OUT``) and appends one ``bench.eco`` run-ledger
record for the perf sentinel.

Runs under pytest (``pytest benchmarks/bench_eco.py``) or standalone::

    PYTHONPATH=src:. python benchmarks/bench_eco.py [--quick] [--check]
        [--designs NTT4,MAC6] [--edits 8] [--no-verify]

With ``--check`` the exit status enforces the committed contract:
revisit speedup >= MIN_SPEEDUP (10x) on every benchmarked design.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

try:
    from benchmarks._ledger import append_run
except ImportError:  # standalone: python benchmarks/bench_eco.py
    from _ledger import append_run

OUT_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_ECO_OUT",
        Path(__file__).resolve().parent / "BENCH_eco.json",
    )
)

FULL_DESIGNS = ["NTT4", "BFLY8", "MODMUL6", "MAC6"]
QUICK_DESIGNS = ["NTT4", "BFLY8"]

#: acceptance floor: cold median / revisit median, per design
MIN_SPEEDUP = 10.0


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _edit_scripts(circuit, n_edits: int) -> list[list[dict]]:
    """One single-op script per edit: re-type a carry cell to a mux."""
    from repro.netlist import GateFn

    carries = [g.name for g in circuit.gates.values() if g.fn is GateFn.CARRY]
    if not carries:
        raise ValueError(
            f"{circuit.name}: no carry cells to edit — pick another design"
        )
    return [
        [{"op": "retype_gate", "name": name, "fn": "mux"}]
        for name in carries[:n_edits]
    ]


def bench_design(name: str, n_edits: int, verify: bool) -> dict[str, object]:
    from repro.eco import (
        EcoState,
        apply_edit_script,
        deterministic_metrics,
        eco_retime,
    )
    from repro.mcretime import mc_retime
    from repro.netlist import circuit_stats, write_blif
    from repro.synth import build_datapath
    from repro.timing import XC4000E_DELAY

    circuit = build_datapath(name).circuit
    stats = circuit_stats(circuit)
    scripts = _edit_scripts(circuit, n_edits)

    state = EcoState(circuit, delay_model=XC4000E_DELAY)
    eco_retime(state, [])  # pay the prefix build once, before the clock

    cold_s: list[float] = []
    first_s: list[float] = []
    revisit_s: list[float] = []
    plans: dict[str, int] = {}
    for ops in scripts:
        edited = apply_edit_script(circuit, ops)
        cold, sec = _timed(lambda: mc_retime(edited, delay_model=XC4000E_DELAY))
        cold_s.append(sec)
        first, sec = _timed(lambda: eco_retime(state, ops))
        first_s.append(sec)
        revisit, sec = _timed(lambda: eco_retime(state, ops))
        revisit_s.append(sec)
        for eco in (first, revisit):
            plans[eco.plan] = plans.get(eco.plan, 0) + 1
            if verify:
                if write_blif(eco.result.circuit) != write_blif(cold.circuit):
                    raise AssertionError(
                        f"{name} {ops}: ECO netlist diverged from cold"
                    )
                if deterministic_metrics(eco.result) != deterministic_metrics(
                    cold
                ):
                    raise AssertionError(
                        f"{name} {ops}: ECO metrics diverged from cold"
                    )

    cold_med = statistics.median(cold_s)
    first_med = statistics.median(first_s)
    revisit_med = statistics.median(revisit_s)
    return {
        "ff": stats.n_ff,
        "gates": stats.n_gates,
        "edits": len(scripts),
        "plans": plans,
        "cold_median_s": cold_med,
        "first_visit_median_s": first_med,
        "revisit_median_s": revisit_med,
        "first_visit_speedup": cold_med / max(first_med, 1e-12),
        "revisit_speedup": cold_med / max(revisit_med, 1e-12),
        "verified": verify,
    }


def run_bench(
    quick: bool = False,
    designs: list[str] | None = None,
    n_edits: int | None = None,
    verify: bool = True,
) -> dict[str, object]:
    if designs is None:
        designs = QUICK_DESIGNS if quick else FULL_DESIGNS
    if n_edits is None:
        n_edits = 4 if quick else 8
    rows = {name: bench_design(name, n_edits, verify) for name in designs}
    speedups = {name: row["revisit_speedup"] for name, row in rows.items()}
    aggregate = {
        "designs_at_floor": sum(
            1 for s in speedups.values() if s >= MIN_SPEEDUP
        ),
        "speedup_min": min(speedups.values()),
        "speedup_max": max(speedups.values()),
        "revisit_speedups": speedups,
    }
    report = {
        "meta": {
            "quick": quick,
            "designs": designs,
            "edits": n_edits,
            "verify": verify,
            "python": platform.python_version(),
            "min_speedup": MIN_SPEEDUP,
        },
        "designs": rows,
        "aggregate": aggregate,
    }
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    spans = {}
    for name, row in rows.items():
        spans[f"{name}.cold"] = row["cold_median_s"]
        spans[f"{name}.resolve"] = row["first_visit_median_s"]
        spans[f"{name}.reuse"] = row["revisit_median_s"]
    append_run(
        "bench.eco",
        spans,
        config=dict(report["meta"]),
        metrics={
            "designs_at_floor": aggregate["designs_at_floor"],
            "speedup_min": aggregate["speedup_min"],
            "speedup_max": aggregate["speedup_max"],
        },
    )
    return report


# --------------------------------------------------------------------- #
# pytest entry


def test_eco_bench_quick(tmp_path, monkeypatch):
    """Quick harness sanity: runs, emits JSON, every incremental solve
    bit-identical to cold, revisit speedup >= 10x on every design."""
    out = tmp_path / "BENCH_eco.json"
    monkeypatch.setattr(sys.modules[__name__], "OUT_PATH", out)
    monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "ledger.jsonl"))
    report = run_bench(quick=True)
    assert out.exists()
    for name, row in report["designs"].items():
        assert row["verified"], name
        assert row["plans"].get("reuse", 0) >= row["edits"], name
    assert report["aggregate"]["designs_at_floor"] == len(report["designs"])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--designs", help="comma-separated design names")
    parser.add_argument("--edits", type=int, help="edits per design")
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the bit-identity differential checks",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless every design meets the speedup floor",
    )
    args = parser.parse_args(argv)
    report = run_bench(
        quick=args.quick,
        designs=args.designs.split(",") if args.designs else None,
        n_edits=args.edits,
        verify=not args.no_verify,
    )
    print(json.dumps(report, indent=2))
    print(f"wrote {OUT_PATH}")
    agg = report["aggregate"]
    print(
        f"revisit speedup {agg['speedup_min']:.1f}x–{agg['speedup_max']:.1f}x "
        f"(floor {MIN_SPEEDUP:.0f}x, {agg['designs_at_floor']}/"
        f"{len(report['designs'])} designs at floor)"
    )
    if args.check and agg["designs_at_floor"] < len(report["designs"]):
        print(
            f"speedup floor {MIN_SPEEDUP:.0f}x missed on "
            f"{len(report['designs']) - agg['designs_at_floor']} design(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
