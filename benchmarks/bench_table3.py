"""Benchmark: Table 3 regeneration — retiming after EN decomposition.

The paper's second experiment: decompose every load enable into a
D-side hold mux, then retime.  Compare ``Rdelay``/``Rlut`` extra_info
against bench_table2's to see the paper's headline trade-off.
"""

from repro.flows import decomposed_enable_flow


def test_table3_row(benchmark, design_name, mapped_designs):
    circuit, base = mapped_designs[design_name]
    flow = benchmark(decomposed_enable_flow, circuit)
    assert all(not r.has_enable for r in flow.circuit.registers.values())
    benchmark.extra_info.update(
        {
            "#FF": flow.n_ff,
            "#LUT": flow.n_lut,
            "Delay": round(flow.delay, 2),
            "Rlut1": round(flow.n_lut / max(base.n_lut, 1), 3),
            "Rdelay1": round(flow.delay / base.delay, 3),
        }
    )
