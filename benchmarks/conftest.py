"""Shared fixtures for the benchmark harness.

Set ``REPRO_BENCH_SCALE`` (default 0.3) and ``REPRO_BENCH_DESIGNS``
(default a representative small/medium subset) to control cost.  Full
paper-scale regeneration is done by ``mcretime-tables`` (see
EXPERIMENTS.md); the benchmarks are for tracking the *speed* of each
regeneration stage.
"""

from __future__ import annotations

import os

import pytest

from repro.flows import baseline_flow
from repro.synth import build_design

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))
DESIGNS = os.environ.get("REPRO_BENCH_DESIGNS", "C1,C3,C5,C8").split(",")


def pytest_generate_tests(metafunc):
    if "design_name" in metafunc.fixturenames:
        metafunc.parametrize("design_name", DESIGNS)


@pytest.fixture(autouse=True)
def _ledger_to_tmp(tmp_path, monkeypatch):
    """Redirect the harnesses' run-ledger appends away from the repo.

    Every harness appends a ``bench.*`` record to the shared ledger
    (``benchmarks/_ledger.py``); under pytest that record belongs in the
    test's tmp dir, not in ``benchmarks/LEDGER.jsonl``.
    """
    if not os.environ.get("REPRO_LEDGER"):
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "LEDGER.jsonl"))


@pytest.fixture(scope="session")
def mapped_designs():
    """Baseline-mapped designs, shared across benchmarks."""
    result = {}
    for name in DESIGNS:
        circuit = build_design(name, SCALE).circuit
        result[name] = (circuit, baseline_flow(circuit))
    return result
