"""Benchmark: algorithmic kernels (ablation view of the engine stages).

The paper reports that ~90 % of runtime is the basic retiming engine,
~7 % relocation, ~3 % multiple-class bookkeeping; these micro-benches
time each stage separately so the split can be examined directly, plus
the classic correlator optimum as a fixed reference point.
"""

import pytest

from benchmarks.conftest import SCALE
from repro.graph import build_mcgraph
from repro.mcretime import Classifier, apply_sharing_transform, compute_bounds
from repro.retime import min_area, min_period
from repro.techmap import enumerate_cuts
from repro.techmap.decompose import decompose_to_two_input
from tests.retime.helpers import correlator


@pytest.fixture(scope="module")
def mapped_c5(mapped_designs):
    if "C5" not in mapped_designs:
        pytest.skip("C5 not in REPRO_BENCH_DESIGNS")
    return mapped_designs["C5"][1].circuit


@pytest.fixture(scope="module")
def c5_graph(mapped_c5):
    from repro.timing import XC4000E_DELAY

    classifier = Classifier(mapped_c5)
    return build_mcgraph(mapped_c5, XC4000E_DELAY, classifier.classify).graph


def test_correlator_min_period(benchmark):
    graph = correlator()
    result = benchmark(min_period, graph)
    assert result.phi == pytest.approx(13.0)


def test_correlator_min_area(benchmark):
    graph = correlator()
    result = benchmark(min_area, graph, 13.0)
    assert result.period <= 13.0 + 1e-9


def test_classification(benchmark, mapped_c5):
    classifier = benchmark(Classifier, mapped_c5)
    assert classifier.n_classes >= 1


def test_mcgraph_build(benchmark, mapped_c5):
    from repro.timing import XC4000E_DELAY

    classifier = Classifier(mapped_c5)
    result = benchmark(
        build_mcgraph, mapped_c5, XC4000E_DELAY, classifier.classify
    )
    assert len(result.graph.vertices) > 0


def test_bounds_maximal_retiming(benchmark, c5_graph):
    result = benchmark(compute_bounds, c5_graph)
    assert result.steps_possible > 0


def test_sharing_transform(benchmark, c5_graph):
    bounds = compute_bounds(c5_graph)
    result = benchmark(
        apply_sharing_transform,
        c5_graph,
        bounds.bounds,
        bounds.backward_graph,
    )
    result.graph.check()


def test_min_period_on_design(benchmark, c5_graph):
    bounds = compute_bounds(c5_graph)
    transform = apply_sharing_transform(
        c5_graph, bounds.bounds, bounds.backward_graph
    )
    result = benchmark(min_period, transform.graph, transform.bounds)
    assert result.phi > 0


def test_cut_enumeration(benchmark, mapped_c5):
    work = mapped_c5.clone()
    decompose_to_two_input(work)
    db = benchmark(enumerate_cuts, work, 4, 8)
    assert db.best
