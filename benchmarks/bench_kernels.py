"""Benchmark: compiled kernel layer vs the dict reference engines.

Times each hot kernel (CP/Δ sweep, lazy feasibility, min-period search,
min-area LP, one LP/flow solve, STA, BLIF parse) against its dict-based
oracle and the end-to-end Table-2 retiming flow per design, old engine
vs new, asserting bit-identical results along the way.  Writes
``benchmarks/BENCH_kernels.json`` (override with
``REPRO_BENCH_KERNELS_OUT``).

Runs under pytest (``pytest benchmarks/bench_kernels.py``) or
standalone::

    PYTHONPATH=src:. python benchmarks/bench_kernels.py [--quick]
        [--designs C1,...,C10] [--scale 0.3] [--repeats 5]
        [--check-against benchmarks/BENCH_kernels.json] [--service]

``--check-against`` compares per-kernel medians to a committed baseline
and exits non-zero when any kernel got more than 25 % slower — the CI
perf-smoke contract.  ``--service`` also regenerates
``BENCH_service.json`` through :mod:`benchmarks.bench_service`.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

try:
    from benchmarks._ledger import append_run
except ImportError:  # standalone: python benchmarks/bench_kernels.py
    from _ledger import append_run

OUT_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_KERNELS_OUT",
        Path(__file__).resolve().parent / "BENCH_kernels.json",
    )
)

FULL_DESIGNS = ["C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8", "C9", "C10"]
QUICK_DESIGNS = ["C1", "C3"]

#: --check-against fails when a kernel's oracle-relative speedup drops
#: below baseline ÷ this (speedups are comparable across machines and
#: workload scales; absolute medians are not)
REGRESSION_TOLERANCE = 1.4

#: entries whose oracle median is below this are not gated: at
#: sub-millisecond scale the speedup estimate is dominated by timer
#: noise, not kernel performance
MIN_GATED_MEDIAN = 0.005


# --------------------------------------------------------------------- #
# timing helpers


def _samples(fn, repeats: int, setup=None) -> list[float]:
    out = []
    for _ in range(repeats):
        arg = setup() if setup is not None else None
        t0 = time.perf_counter()
        fn(arg) if setup is not None else fn()
        out.append(time.perf_counter() - t0)
    return out


def _stats(samples: list[float]) -> dict[str, float]:
    ordered = sorted(samples)
    p90 = ordered[min(len(ordered) - 1, int(round(0.9 * (len(ordered) - 1))))]
    return {
        "median": statistics.median(ordered),
        "p90": p90,
        "n": len(ordered),
    }


def _pair(oracle_samples, kernel_samples) -> dict[str, object]:
    o, k = _stats(oracle_samples), _stats(kernel_samples)
    return {
        "oracle": o,
        "kernel": k,
        "speedup": o["median"] / max(k["median"], 1e-12),
    }


# --------------------------------------------------------------------- #
# per-kernel micro benches


def bench_kernels(repeats: int, quick: bool) -> dict[str, object]:
    from repro import kernels
    from repro.netlist import read_blif, write_blif
    from repro.retime.feas import compute_delta
    from repro.retime.minarea import _min_area_dict
    from repro.retime.minarea import _solve_lp as dict_lp
    from repro.retime.minperiod import (
        _check_period_dict,
        _check_period_kernel,
        _min_period_dict,
        base_system,
    )
    from repro.retime.sharing_model import build_sharing_model
    from repro.kernels.minarea import _solve_lp as kernel_lp
    from repro.flows import baseline_flow
    from repro.synth import build_design
    from repro.timing import XC4000E_DELAY
    from repro.timing.sta import _analyze_dict
    from tests.retime.helpers import random_graph

    n, m = (150, 500) if quick else (400, 1400)
    graph = random_graph(11, n_vertices=n, n_edges=m)
    cg = kernels.compile_graph(graph)
    zero = [0] * cg.n
    zero_d = {v: 0 for v in graph.vertices}
    report: dict[str, object] = {}

    # CP/Δ sweep
    report["delta_sweep"] = _pair(
        _samples(lambda: compute_delta(graph, zero_d), repeats),
        _samples(lambda: kernels.delta_sweep(cg, zero), repeats),
    )

    # lazy feasibility at the achievable period
    phi = _min_period_dict(graph, None, 1e-6).phi
    report["check_period"] = _pair(
        _samples(
            lambda s: _check_period_dict(graph, phi, s),
            repeats,
            setup=lambda: base_system(graph),
        ),
        _samples(
            lambda s: _check_period_kernel(graph, phi, s),
            repeats,
            setup=lambda: base_system(graph),
        ),
    )

    # the min-period binary-search loop
    report["min_period"] = _pair(
        _samples(lambda: _min_period_dict(graph, None, 1e-6), repeats),
        _samples(lambda: kernels.min_period_kernel(graph, None, 1e-6), repeats),
    )

    # min-area at that period
    model = build_sharing_model(graph)
    report["min_area"] = _pair(
        _samples(lambda: _min_area_dict(graph, phi, None, model), repeats),
        _samples(
            lambda: kernels.min_area_kernel(graph, phi, None, model), repeats
        ),
    )

    # one LP solve (difference system + min-cost flow dual)
    extended = model.graph
    ecg = kernels.compile_graph(extended)
    esystem = base_system(extended)
    supply = [0] * ecg.n
    for name, c in model.cost.items():
        supply[ecg.index[name]] = -c
    report["lp_solve"] = _pair(
        _samples(lambda: dict_lp(esystem, model), repeats),
        _samples(
            lambda cs: kernel_lp(cs, supply),
            repeats,
            setup=lambda: kernels.CompiledSystem.from_system(esystem, ecg),
        ),
    )

    # STA (full) and the incremental what-if update
    design = "C1" if quick else "C5"
    circuit = baseline_flow(build_design(design, 0.3).circuit).circuit
    report["sta"] = _pair(
        _samples(lambda: _analyze_dict(circuit, XC4000E_DELAY), repeats),
        _samples(
            lambda: kernels.analyze_kernel(circuit, XC4000E_DELAY), repeats
        ),
    )
    sta = kernels.CompiledSTA(circuit, XC4000E_DELAY)
    sta.full_sweep()
    some_q = next(iter(circuit.registers.values())).q
    flip = [0.0]

    def _update():
        flip[0] = 3.0 - flip[0]  # alternate so every update does work
        sta.update({some_q: XC4000E_DELAY.clock_to_q + flip[0]})

    report["sta_incremental"] = _pair(
        _samples(lambda: _analyze_dict(circuit, XC4000E_DELAY), repeats),
        _samples(_update, repeats),
    )

    # BLIF parse micro-bench (regex precompile + joined continuations)
    text = write_blif(circuit)
    parse = _stats(_samples(lambda: read_blif(text), repeats))
    parse["bytes"] = len(text)
    report["blif_parse"] = {"kernel": parse}
    return report


# --------------------------------------------------------------------- #
# end-to-end table-2 flow, old vs new engine


def bench_end_to_end(
    designs: list[str], scale: float, repeats: int = 3
) -> dict[str, object]:
    from repro.flows import baseline_flow
    from repro.mcretime import mc_retime
    from repro.netlist import write_blif
    from repro.synth import build_design
    from repro.timing import XC4000E_DELAY

    rows: dict[str, object] = {}
    dict_total = kernel_total = 0.0
    for name in designs:
        mapped = baseline_flow(build_design(name, scale).circuit).circuit

        new = old = None
        new_samples: list[float] = []
        old_samples: list[float] = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            new = mc_retime(mapped, XC4000E_DELAY, use_kernels=True)
            new_samples.append(time.perf_counter() - t0)

            t0 = time.perf_counter()
            old = mc_retime(mapped, XC4000E_DELAY, use_kernels=False)
            old_samples.append(time.perf_counter() - t0)

        identical = (
            new.r == old.r
            and new.period_after == old.period_after
            and new.ff_after == old.ff_after
            and write_blif(new.circuit) == write_blif(old.circuit)
        )
        t_new = statistics.median(new_samples)
        t_old = statistics.median(old_samples)
        dict_total += t_old
        kernel_total += t_new
        rows[name] = {
            "dict_seconds": t_old,
            "kernel_seconds": t_new,
            "speedup": t_old / max(t_new, 1e-12),
            "netlist_identical": identical,
        }
    rows["totals"] = {
        "dict_seconds": dict_total,
        "kernel_seconds": kernel_total,
        "speedup": dict_total / max(kernel_total, 1e-12),
    }
    return rows


# --------------------------------------------------------------------- #
# harness


def run_bench(
    quick: bool = False,
    designs: list[str] | None = None,
    scale: float | None = None,
    repeats: int | None = None,
    with_service: bool = False,
) -> dict[str, object]:
    from repro import kernels

    if designs is None:
        designs = QUICK_DESIGNS if quick else FULL_DESIGNS
    if scale is None:
        scale = 0.2 if quick else 0.3
    if repeats is None:
        repeats = 3 if quick else 5
    report = {
        "meta": {
            "quick": quick,
            "scale": scale,
            "repeats": repeats,
            "designs": designs,
            "python": platform.python_version(),
            "numpy": kernels.HAVE_NUMPY,
        },
        "kernels": bench_kernels(repeats, quick),
        "end_to_end": bench_end_to_end(designs, scale, 2 if quick else 5),
    }
    if not quick:
        # also record the quick-workload numbers so a CI --quick run has
        # a like-for-like baseline (speedups are scale-dependent)
        report["kernels_quick"] = bench_kernels(3, True)
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    spans: dict[str, float] = {}
    for name, entry in report["kernels"].items():
        for side in ("oracle", "kernel"):
            stats = entry.get(side)
            if stats and "median" in stats:
                spans[f"{name}.{side}"] = stats["median"]
    for name, row in report["end_to_end"].items():
        if name != "totals":
            spans[f"e2e.{name}"] = row["kernel_seconds"]
    append_run(
        "bench.kernels",
        spans,
        config=dict(report["meta"]),
        metrics={
            f"{name}.speedup": entry["speedup"]
            for name, entry in report["kernels"].items()
            if "speedup" in entry
        },
    )
    if with_service:
        import tempfile

        from benchmarks.bench_service import run_bench as run_service

        with tempfile.TemporaryDirectory() as tmp:
            run_service(designs[: min(len(designs), 4)], scale, Path(tmp))
    return report


def check_against(report: dict, baseline_path: Path) -> list[str]:
    """Compare kernel speedups to a committed baseline; returns failures.

    A kernel "regresses" when its speedup over the dict oracle (measured
    in the same process, so machine speed cancels out) drops below the
    committed baseline's speedup divided by ``REGRESSION_TOLERANCE``.
    Kernel-only entries (no oracle to normalise by) and entries whose
    oracle median is under ``MIN_GATED_MEDIAN`` (too small for the
    speedup to be a stable statistic) are skipped.
    """
    baseline = json.loads(baseline_path.read_text())
    base_kernels = baseline.get("kernels", {})
    if report["meta"]["quick"] and "kernels_quick" in baseline:
        base_kernels = baseline["kernels_quick"]
    failures = []
    for name, entry in report["kernels"].items():
        base_entry = base_kernels.get(name)
        if not base_entry or "speedup" not in base_entry:
            continue
        now = entry.get("speedup")
        ref = base_entry["speedup"]
        if now is None:
            continue
        oracle = entry.get("oracle", {})
        if oracle.get("median", 0.0) < MIN_GATED_MEDIAN:
            continue
        if now < ref / REGRESSION_TOLERANCE:
            failures.append(
                f"{name}: speedup {now:.2f}x vs baseline {ref:.2f}x "
                f"(allowed floor {ref / REGRESSION_TOLERANCE:.2f}x)"
            )
    return failures


# --------------------------------------------------------------------- #
# pytest entry


def test_kernel_bench_quick(tmp_path, monkeypatch):
    """Quick harness sanity: runs, emits JSON, results bit-identical."""
    out = tmp_path / "BENCH_kernels.json"
    monkeypatch.setattr(sys.modules[__name__], "OUT_PATH", out)
    report = run_bench(quick=True)
    assert out.exists()
    for name, row in report["end_to_end"].items():
        if name != "totals":
            assert row["netlist_identical"], name
    # identical algorithm on integer arrays: never slower than ~par on
    # the search loop (generous bound: timing noise only)
    assert report["kernels"]["min_period"]["speedup"] > 0.5


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--designs", help="comma-separated design names")
    parser.add_argument("--scale", type=float)
    parser.add_argument("--repeats", type=int)
    parser.add_argument(
        "--check-against",
        type=Path,
        help="baseline BENCH_kernels.json; exit 1 on a >25%% regression",
    )
    parser.add_argument(
        "--service",
        action="store_true",
        help="also regenerate BENCH_service.json",
    )
    args = parser.parse_args(argv)
    report = run_bench(
        quick=args.quick,
        designs=args.designs.split(",") if args.designs else None,
        scale=args.scale,
        repeats=args.repeats,
        with_service=args.service,
    )
    print(json.dumps(report, indent=2))
    print(f"wrote {OUT_PATH}")
    bad = [
        name
        for name, row in report["end_to_end"].items()
        if name != "totals" and not row["netlist_identical"]
    ]
    if bad:
        print(f"NON-IDENTICAL kernel/dict netlists: {bad}", file=sys.stderr)
        return 2
    if args.check_against:
        failures = check_against(report, args.check_against)
        if failures:
            print("kernel perf regressions:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print("no kernel regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
