"""Benchmark: batch service throughput (jobs/sec) and cache speedup.

Measures an N-design batch three ways — cold cache at 1 worker, cold
cache at ``os.cpu_count()`` workers, warm cache — and writes the
numbers to ``BENCH_service.json`` (override the path with
``REPRO_BENCH_SERVICE_OUT``).

Runs under the pytest benchmark harness (``pytest benchmarks/``) or
standalone::

    PYTHONPATH=src python benchmarks/bench_service.py
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

try:
    from benchmarks._ledger import append_run
except ImportError:  # standalone: python benchmarks/bench_service.py
    from _ledger import append_run

OUT_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_SERVICE_OUT",
        Path(__file__).resolve().parent / "BENCH_service.json",
    )
)


def _jobs(designs: list[str], scale: float):
    from repro.netlist import write_blif
    from repro.service import RetimeJob
    from repro.synth import build_design

    return [
        RetimeJob(
            netlist=write_blif(build_design(name, scale).circuit),
            name=name,
            flow="mcretime",
            delay_model="xc4000e",
        )
        for name in designs
    ]


def _timed_batch(jobs, workers: int, cache_dir: Path) -> dict[str, float]:
    from repro.service import RetimeService

    service = RetimeService(workers=workers, cache_dir=cache_dir)
    try:
        t0 = time.perf_counter()
        results = service.batch(jobs)
        elapsed = time.perf_counter() - t0
        assert all(r.ok for r in results), [
            r.error.message for r in results if not r.ok
        ]
        return {
            "seconds": elapsed,
            "jobs_per_sec": len(jobs) / max(elapsed, 1e-9),
            "cache_hit_rate": service.cache_hit_rate(),
            "p95_latency": service.metrics.histogram(
                "repro_job_latency_seconds"
            ).percentile(95),
        }
    finally:
        service.close()


def run_bench(designs: list[str], scale: float, out_dir: Path) -> dict:
    """Cold 1-worker vs cold N-worker vs warm-cache batch throughput."""
    n_workers = os.cpu_count() or 1
    jobs = _jobs(designs, scale)

    cold_serial = _timed_batch(jobs, 1, out_dir / "cache_serial")
    cold_pool = _timed_batch(jobs, n_workers, out_dir / "cache_pool")
    warm = _timed_batch(jobs, n_workers, out_dir / "cache_pool")

    report = {
        "designs": designs,
        "scale": scale,
        "n_jobs": len(jobs),
        "pool_workers": n_workers,
        "cold_1_worker": cold_serial,
        "cold_pool": cold_pool,
        "warm_cache": warm,
        "pool_speedup": cold_serial["seconds"] / max(cold_pool["seconds"], 1e-9),
        "warm_speedup": cold_serial["seconds"] / max(warm["seconds"], 1e-9),
    }
    OUT_PATH.write_text(json.dumps(report, indent=2))
    append_run(
        "bench.service",
        {
            "cold_1_worker": cold_serial["seconds"],
            "cold_pool": cold_pool["seconds"],
            "warm_cache": warm["seconds"],
        },
        config={"designs": designs, "scale": scale, "workers": n_workers},
        metrics={
            "pool_speedup": report["pool_speedup"],
            "warm_speedup": report["warm_speedup"],
            "jobs_per_sec_pool": cold_pool["jobs_per_sec"],
            "cache_hit_rate_warm": warm["cache_hit_rate"],
        },
    )
    return report


def test_service_throughput(tmp_path):
    """Pytest entry: small batch, asserts the cache actually pays off."""
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))
    designs = os.environ.get("REPRO_BENCH_DESIGNS", "C1,C3,C5,C8").split(",")
    report = run_bench(designs, scale, tmp_path)
    assert report["warm_cache"]["cache_hit_rate"] > 0.9
    # a warm rerun must beat re-executing everything serially
    assert report["warm_speedup"] > 1.0
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        result = run_bench(
            os.environ.get(
                "REPRO_BENCH_DESIGNS", "C1,C2,C3,C4,C5,C6,C7,C8"
            ).split(","),
            float(os.environ.get("REPRO_BENCH_SCALE", "0.5")),
            Path(tmp),
        )
    print(json.dumps(result, indent=2))
    print(f"wrote {OUT_PATH}")
