"""Benchmark: batch service throughput, scale-out saturation, phases.

Measures four things and writes them to ``BENCH_service.json``
(override the path with ``REPRO_BENCH_SERVICE_OUT``):

* **batch throughput** — an N-design batch cold at 1 worker, cold at
  the pool size, and warm (cache hits);
* **per-phase breakdown** — where a cold batch's wall-clock goes:
  ``serialize`` (canonicalisation), ``intern`` (work-graph build +
  CSR pack), ``admit`` (front-end submission), ``solve`` (worker
  stage seconds);
* **saturation** — cold jobs/sec for a target-period sweep at 1
  worker vs ``--pool-workers`` workers, in both legacy
  (ship-the-netlist) and scale-out (shared-memory interned) dispatch
  modes.  The scaling gate (pool rate >= 3x the 1-worker rate) is
  enforced by ``--check`` when the host actually has >= 4 cores —
  the CI ``service-saturation-smoke`` job runs on one; a 1-core dev
  box records the honest curve without failing;
* **run-ledger records** — spans + metrics appended for the perf
  sentinel (relative mode vs ``benchmarks/BASELINE_ledger.jsonl``).

Runs under the pytest benchmark harness (``pytest benchmarks/``) or
standalone::

    PYTHONPATH=src python benchmarks/bench_service.py --quick
    PYTHONPATH=src python benchmarks/bench_service.py \
        --pool-workers 4 --n-jobs 24 --check
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

try:
    from benchmarks._ledger import append_run
except ImportError:  # standalone: python benchmarks/bench_service.py
    from _ledger import append_run

OUT_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_SERVICE_OUT",
        Path(__file__).resolve().parent / "BENCH_service.json",
    )
)

#: worker flow stages summed into the ``solve`` phase
_STAGES = ("build", "bounds", "sharing", "minperiod", "minarea", "relocate")


def _jobs(designs: list[str], scale: float):
    from repro.netlist import write_blif
    from repro.service import RetimeJob
    from repro.synth import build_design

    return [
        RetimeJob(
            netlist=write_blif(build_design(name, scale).circuit),
            name=name,
            flow="mcretime",
            delay_model="xc4000e",
        )
        for name in designs
    ]


def _sweep_jobs(designs: list[str], scale: float, n_jobs: int):
    """A cold target-period sweep: n_jobs distinct jobs over designs."""
    from repro.netlist import read_blif, write_blif
    from repro.mcretime import mc_retime
    from repro.service import RetimeJob
    from repro.synth import build_design
    from repro.timing import XC4000E_DELAY

    texts, base_periods = {}, {}
    for name in designs:
        texts[name] = write_blif(build_design(name, scale).circuit)
        base = mc_retime(read_blif(texts[name]), delay_model=XC4000E_DELAY)
        base_periods[name] = base.period_after

    jobs = []
    for i in range(n_jobs):
        name = designs[i % len(designs)]
        slack = 1.10 + 0.03 * (i // len(designs))
        jobs.append(
            RetimeJob(
                netlist=texts[name],
                name=name,
                flow="mcretime",
                delay_model="xc4000e",
                target_period=round(base_periods[name] * slack, 4),
            )
        )
    return jobs


def _timed_batch(
    jobs, workers: int, cache_dir: Path | None, scaleout: bool | None = None
) -> dict[str, float]:
    from repro.service import RetimeService

    service = RetimeService(
        workers=workers, cache_dir=cache_dir, scaleout=scaleout
    )
    try:
        admit = 0.0
        t0 = time.perf_counter()
        ids = []
        for job in jobs:
            a0 = time.perf_counter()
            ids.append(service.submit(job))
            admit += time.perf_counter() - a0
        results = [service.wait(job_id, timeout=600) for job_id in ids]
        elapsed = time.perf_counter() - t0
        assert all(r.ok for r in results), [
            r.error.message for r in results if not r.ok
        ]
        stage_hist = service.metrics.histogram("repro_stage_seconds")
        return {
            "seconds": elapsed,
            "jobs_per_sec": len(jobs) / max(elapsed, 1e-9),
            "cache_hit_rate": service.cache_hit_rate(),
            "p95_latency": service.metrics.histogram(
                "repro_job_latency_seconds"
            ).percentile(95),
            "admit_seconds": admit,
            "solve_seconds": sum(
                stage_hist.sum(stage=stage) for stage in _STAGES
            ),
            "scaleout": service.scaleout,
        }
    finally:
        service.close()


def _phase_breakdown(jobs) -> dict[str, float]:
    """Design-level costs the scale-out path pays once, not per job."""
    from repro.kernels import compile_graph
    from repro.mcretime import intern_work_graph
    from repro.netlist import read_blif
    from repro.service import RetimeJob
    from repro.service.interning import HAVE_SHM, pack_segment
    from repro.timing import XC4000E_DELAY

    t0 = time.perf_counter()
    fresh = [RetimeJob.from_dict(job.to_dict()) for job in jobs]
    for job in fresh:
        job.canonical_key  # parse + canonical emit + hash
    serialize = time.perf_counter() - t0

    intern = 0.0
    for netlist in {job.netlist for job in jobs}:
        t0 = time.perf_counter()
        circuit = read_blif(netlist)
        cg = compile_graph(intern_work_graph(circuit, XC4000E_DELAY, True))
        if HAVE_SHM:
            pack_segment(netlist, {"seed": cg.to_buffer()})
        intern += time.perf_counter() - t0
    return {"serialize_seconds": serialize, "intern_seconds": intern}


def run_bench(
    designs: list[str],
    scale: float,
    out_dir: Path,
    pool_workers: int | None = None,
    n_jobs: int | None = None,
) -> dict:
    """Cold/warm batch throughput + saturation scaling + phase split."""
    cpu_count = os.cpu_count() or 1
    pool_workers = pool_workers or min(4, cpu_count)
    n_jobs = n_jobs or 4 * len(designs)
    jobs = _jobs(designs, scale)

    cold_serial = _timed_batch(jobs, 1, out_dir / "cache_serial")
    cold_pool = _timed_batch(jobs, pool_workers, out_dir / "cache_pool")
    warm = _timed_batch(jobs, pool_workers, out_dir / "cache_pool")
    phases = _phase_breakdown(jobs)
    phases["admit_seconds"] = cold_pool["admit_seconds"]
    phases["solve_seconds"] = cold_pool["solve_seconds"]

    sweep = _sweep_jobs(designs, scale, n_jobs)
    legacy_1w = _timed_batch(sweep, 1, None, scaleout=False)
    scaleout_1w = _timed_batch(sweep, 1, None)
    scaleout_pool = _timed_batch(sweep, pool_workers, None)
    saturation = {
        "n_jobs": len(sweep),
        "pool_workers": pool_workers,
        "cpu_count": cpu_count,
        "legacy_1_worker": legacy_1w,
        "scaleout_1_worker": scaleout_1w,
        "scaleout_pool": scaleout_pool,
        "speedup_vs_1_worker": (
            scaleout_pool["jobs_per_sec"]
            / max(scaleout_1w["jobs_per_sec"], 1e-9)
        ),
        "speedup_vs_legacy_1_worker": (
            scaleout_pool["jobs_per_sec"]
            / max(legacy_1w["jobs_per_sec"], 1e-9)
        ),
    }

    report = {
        "designs": designs,
        "scale": scale,
        "n_jobs": len(jobs),
        "pool_workers": pool_workers,
        "cpu_count": cpu_count,
        "cold_1_worker": cold_serial,
        "cold_pool": cold_pool,
        "warm_cache": warm,
        "phases": phases,
        "saturation": saturation,
        "pool_speedup": cold_serial["seconds"] / max(cold_pool["seconds"], 1e-9),
        "warm_speedup": cold_serial["seconds"] / max(warm["seconds"], 1e-9),
    }
    OUT_PATH.write_text(json.dumps(report, indent=2))
    append_run(
        "bench.service",
        {
            "cold_1_worker": cold_serial["seconds"],
            "cold_pool": cold_pool["seconds"],
            "warm_cache": warm["seconds"],
            "saturation_legacy_1w": legacy_1w["seconds"],
            "saturation_scaleout_1w": scaleout_1w["seconds"],
            "saturation_scaleout_pool": scaleout_pool["seconds"],
        },
        config={
            "designs": designs,
            "scale": scale,
            "workers": pool_workers,
            "n_jobs": len(sweep),
            "cpus": cpu_count,
        },
        metrics={
            "pool_speedup": report["pool_speedup"],
            "warm_speedup": report["warm_speedup"],
            "jobs_per_sec_pool": cold_pool["jobs_per_sec"],
            "cache_hit_rate_warm": warm["cache_hit_rate"],
            "saturation_speedup": saturation["speedup_vs_1_worker"],
            "saturation_jobs_per_sec": scaleout_pool["jobs_per_sec"],
        },
    )
    return report


def check_gates(report: dict) -> list[str]:
    """Hard gates for --check / CI; returns failure messages."""
    failures = []
    warm = report["warm_cache"]
    if warm["cache_hit_rate"] <= 0.9:
        failures.append(
            f"warm cache hit rate {warm['cache_hit_rate']:.2f} <= 0.9"
        )
    if warm["p95_latency"] <= 0.0:
        failures.append("warm p95 latency is 0.0 (empty reservoir bug)")
    sat = report["saturation"]
    if sat["cpu_count"] >= 4 and sat["pool_workers"] >= 4:
        best = max(
            sat["speedup_vs_1_worker"], sat["speedup_vs_legacy_1_worker"]
        )
        if best < 3.0:
            failures.append(
                f"saturation: {sat['pool_workers']}-worker rate is only "
                f"{best:.2f}x the 1-worker rate "
                f"(gate: >= 3x on a >= 4-core host)"
            )
    return failures


def test_service_throughput(tmp_path):
    """Pytest entry: small batch, asserts the cache actually pays off."""
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))
    designs = os.environ.get("REPRO_BENCH_DESIGNS", "C1,C3,C5,C8").split(",")
    report = run_bench(designs, scale, tmp_path, n_jobs=2 * len(designs))
    assert report["warm_cache"]["cache_hit_rate"] > 0.9
    # the p95 satellite: warm reruns must report real cache-hit latency
    assert report["warm_cache"]["p95_latency"] > 0.0
    # a warm rerun must beat re-executing everything serially
    assert report["warm_speedup"] > 1.0
    # phase accounting is populated for cold runs
    assert report["phases"]["solve_seconds"] > 0.0
    assert report["phases"]["serialize_seconds"] > 0.0
    if (os.cpu_count() or 1) >= 4:
        sat = report["saturation"]
        assert max(
            sat["speedup_vs_1_worker"], sat["speedup_vs_legacy_1_worker"]
        ) >= 3.0
    print(json.dumps(report, indent=2))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--pool-workers", type=int, default=None, metavar="N",
        help="pool size for the cold-pool and saturation sections "
        "(default: min(4, cpu_count))",
    )
    parser.add_argument(
        "--n-jobs", type=int, default=None, metavar="M",
        help="saturation sweep size (default: 4 jobs per design)",
    )
    parser.add_argument(
        "--designs",
        default=os.environ.get("REPRO_BENCH_DESIGNS", "C1,C2,C3,C5"),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "0.4")),
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller designs and sweep (CI smoke size)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail on gate violations (cache hit rate, p95, >=3x scaling "
        "on >=4-core hosts)",
    )
    args = parser.parse_args(argv)
    designs = args.designs.split(",")
    scale = args.scale
    n_jobs = args.n_jobs
    if args.quick:
        designs = designs[:2]
        scale = min(scale, 0.3)
        n_jobs = n_jobs or 3 * len(designs)

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        report = run_bench(
            designs,
            scale,
            Path(tmp),
            pool_workers=args.pool_workers,
            n_jobs=n_jobs,
        )
    print(json.dumps(report, indent=2))
    print(f"wrote {OUT_PATH}")
    if args.check:
        failures = check_gates(report)
        for failure in failures:
            print(f"GATE FAILED: {failure}")
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
