"""Benchmark: the Figure 1 / 4 / 5 reproductions.

Each regenerates the corresponding paper figure's quantitative content
(see ``mcretime-tables --only figures`` for the narrated output) and
asserts the paper-matching results while being timed.
"""

from repro.experiments import figures


def test_figure1_enable_cost(benchmark):
    result = benchmark(figures.figure1)
    assert result.mc_advantage_ff == 2
    assert result.mc_advantage_gates == 2


def test_figure4_sharing_model(benchmark):
    result = benchmark(figures.figure4)
    assert (result.naive_count, result.true_count, result.corrected_count) == (
        2,
        3,
        3,
    )


def test_figure5_global_justification(benchmark):
    result = benchmark(figures.figure5)
    assert result.global_steps == 1
    assert result.equivalent
