"""Shared helper: every BENCH harness appends one run-ledger record.

The BENCH_*.json files are one-shot snapshots; the ledger
(``benchmarks/LEDGER.jsonl`` by default, ``REPRO_LEDGER`` to override)
accumulates a *trajectory* of ``bench.*`` records that ``mcretime obs
diff/check`` — and the CI ``perf-sentinel`` job — compare with
noise-robust median-of-k statistics.  Each harness maps its headline
medians into the record's ``spans`` field (what the sentinel gates on)
and its derived ratios into ``metrics`` (carried for humans, not
gated).
"""

from __future__ import annotations

import os
import uuid
from pathlib import Path
from typing import Any

#: the shared bench ledger; every harness appends here unless
#: ``REPRO_LEDGER`` points elsewhere
DEFAULT_LEDGER = Path(__file__).resolve().parent / "LEDGER.jsonl"


def ledger_path() -> Path:
    return Path(os.environ.get("REPRO_LEDGER") or DEFAULT_LEDGER)


def append_run(
    kind: str,
    spans: dict[str, float],
    *,
    config: dict[str, Any] | None = None,
    metrics: dict[str, Any] | None = None,
    counters: dict[str, float] | None = None,
    path: str | Path | None = None,
) -> dict[str, Any]:
    """Append one ``bench.*`` record to the shared ledger; returns it."""
    from repro import obs

    return obs.RunLedger(path or ledger_path()).append(
        obs.build_record(
            kind=kind,
            run_id=uuid.uuid4().hex[:16],
            config=config,
            spans=spans,
            counters=counters,
            metrics=metrics,
        )
    )
