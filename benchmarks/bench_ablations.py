"""Benchmark: ablation studies of the engine's design decisions.

Timed versions of :mod:`repro.experiments.ablations` — semantic vs
syntactic classification, class bounds on/off, sharing repair, and the
lazy-vs-dense period-constraint formulations.  The extra_info fields
carry the ablation's findings so a benchmark run doubles as the study.
"""

import pytest

from repro.experiments.ablations import (
    bounds_ablation,
    classification_ablation,
    constraints_ablation,
    sharing_ablation,
)


@pytest.fixture(scope="module")
def subject(mapped_designs):
    name = "C5" if "C5" in mapped_designs else next(iter(mapped_designs))
    return mapped_designs[name][1].circuit


def test_ablation_classification(benchmark, subject):
    result = benchmark(classification_ablation, subject)
    assert result.semantic_classes <= result.syntactic_classes
    benchmark.extra_info.update(
        {
            "semantic_classes": result.semantic_classes,
            "syntactic_classes": result.syntactic_classes,
            "extra_steps": result.extra_freedom,
        }
    )


def test_ablation_bounds(benchmark, subject):
    result = benchmark(bounds_ablation, subject)
    benchmark.extra_info.update(
        {
            "phi_with": round(result.phi_with_bounds, 2),
            "phi_without": round(result.phi_without_bounds, 2),
            "illegal_vertices": result.illegal_vertices,
        }
    )


def test_ablation_sharing(benchmark, subject):
    result = benchmark(sharing_ablation, subject)
    assert result.corrected_registers >= result.naive_registers
    benchmark.extra_info.update(
        {
            "naive": result.naive_registers,
            "corrected": result.corrected_registers,
            "separations": result.separations,
        }
    )


def test_ablation_constraints(benchmark, subject):
    result = benchmark(constraints_ablation, subject)
    assert result.phi_lazy == pytest.approx(result.phi_dense, abs=1e-6)
    benchmark.extra_info.update(
        {
            "lazy_constraints": result.lazy_constraints,
            "dense_constraints": result.dense_constraints,
        }
    )
