"""Benchmark: the bit-parallel verification kernel vs the scalar oracle.

Measures, per evaluation design, the cycle throughput of
:class:`repro.kernels.sim.BitSimulator` against per-lane
:class:`repro.logic.simulate.SequentialSimulator` runs over the
identical coverage-directed stimulus plan, asserting **bit-identical
verdicts** along the way (the kernel exists to make `--verify` cheap,
not to change its answer).  Also times the end-to-end
:func:`~repro.verify.check_sequential` gate in both engines and one
pipeline-fuzz round.  Writes ``benchmarks/BENCH_verify.json`` (override
with ``REPRO_BENCH_VERIFY_OUT``).

Runs under pytest (``pytest benchmarks/bench_verify.py``) or
standalone::

    PYTHONPATH=src:. python benchmarks/bench_verify.py [--quick]
        [--designs C1,C3] [--scale 0.3] [--cycles 48]

The committed JSON doubles as the CI contract: the kernel must stay
>=20x the scalar engine on simulation throughput (MIN_SPEEDUP).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

try:
    from benchmarks._ledger import append_run
except ImportError:  # standalone: python benchmarks/bench_verify.py
    from _ledger import append_run

OUT_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_VERIFY_OUT",
        Path(__file__).resolve().parent / "BENCH_verify.json",
    )
)

FULL_DESIGNS = ["C1", "C2", "C3", "C5", "C8"]
QUICK_DESIGNS = ["C1", "C3"]

#: acceptance floor: aggregate kernel speedup over the scalar oracle
MIN_SPEEDUP = 20.0


def _median(samples: list[float]) -> float:
    return statistics.median(samples)


def bench_design(
    name: str, scale: float, cycles: int, repeats: int
) -> dict[str, object]:
    from repro.flows import baseline_flow, retime_flow
    from repro.kernels.sim import BitSimulator, compile_circuit
    from repro.logic.simulate import SequentialSimulator
    from repro.synth import build_design
    from repro.verify import check_sequential
    from repro.verify.sequential import StimulusPlan

    base = baseline_flow(build_design(name, scale).circuit)
    flow = retime_flow(build_design(name, scale).circuit, mapped=base)
    original, transformed = base.circuit, flow.circuit
    plan = StimulusPlan(original, transformed, cycles, seed=0, lanes=64)

    # raw simulation throughput over the identical plan, both engines
    def run_bits():
        sim = BitSimulator(compile_circuit(original), lanes=plan.lanes)
        for cycle in range(cycles + 1):
            sim.step(plan.word_stimulus(cycle))

    def run_scalar():
        sims = [SequentialSimulator(original) for _ in range(plan.lanes)]
        for cycle in range(cycles + 1):
            for lane, sim in enumerate(sims):
                sim.step(plan.lane_vector(cycle, lane))

    bits_s = [_timed(run_bits) for _ in range(repeats)]
    scalar_s = [_timed(run_scalar) for _ in range(max(1, repeats // 2))]

    # the production gate end to end, both engines — verdicts must agree
    check_bits = check_sequential(
        original, transformed, cycles=cycles, engine="bits"
    )
    check_scalar = check_sequential(
        original, transformed, cycles=cycles, engine="scalar"
    )
    if (check_bits.equivalent, check_bits.reason) != (
        check_scalar.equivalent, check_scalar.reason
    ):
        raise AssertionError(
            f"{name}: engine verdicts diverge: "
            f"bits={check_bits.reason!r} scalar={check_scalar.reason!r}"
        )
    gate_bits = [
        _timed(
            lambda: check_sequential(
                original, transformed, cycles=cycles, engine="bits"
            )
        )
        for _ in range(repeats)
    ]
    gate_scalar = [
        _timed(
            lambda: check_sequential(
                original, transformed, cycles=cycles, engine="scalar"
            )
        )
        for _ in range(max(1, repeats // 2))
    ]

    lane_cycles = plan.lanes * (cycles + 1)
    t_bits, t_scalar = _median(bits_s), _median(scalar_s)
    return {
        "lanes": plan.lanes,
        "cycles": cycles,
        "sim": {
            "scalar_seconds": t_scalar,
            "bits_seconds": t_bits,
            "speedup": t_scalar / max(t_bits, 1e-12),
            "bits_lane_cycles_per_s": lane_cycles / max(t_bits, 1e-12),
            "scalar_lane_cycles_per_s": lane_cycles / max(t_scalar, 1e-12),
        },
        "check": {
            "scalar_seconds": _median(gate_scalar),
            "bits_seconds": _median(gate_bits),
            "speedup": _median(gate_scalar) / max(_median(gate_bits), 1e-12),
            "equivalent": check_bits.equivalent,
            "verdicts_identical": True,
        },
    }


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def bench_fuzz(cycles: int) -> dict[str, object]:
    from repro.verify import fuzz_run

    t0 = time.perf_counter()
    report = fuzz_run(rounds=3, seed=0, cycles=cycles)
    pipeline_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    mutation = fuzz_run(rounds=3, seed=0, cycles=cycles, mutate=True)
    mutation_s = time.perf_counter() - t0
    return {
        "pipeline": {
            "rounds": report.rounds,
            "failures": len(report.failures),
            "seconds": pipeline_s,
        },
        "mutation": {
            "rounds": mutation.rounds,
            "confirmed": mutation.confirmed,
            "killed": mutation.killed,
            "kill_rate": mutation.kill_rate,
            "seconds": mutation_s,
        },
    }


def run_bench(
    quick: bool = False,
    designs: list[str] | None = None,
    scale: float | None = None,
    cycles: int | None = None,
    repeats: int | None = None,
) -> dict[str, object]:
    if designs is None:
        designs = QUICK_DESIGNS if quick else FULL_DESIGNS
    if scale is None:
        scale = 0.2 if quick else 0.3
    if cycles is None:
        cycles = 24 if quick else 48
    if repeats is None:
        repeats = 2 if quick else 3
    rows = {
        name: bench_design(name, scale, cycles, repeats) for name in designs
    }
    sims = [row["sim"] for row in rows.values()]
    aggregate = {
        "speedup_min": min(s["speedup"] for s in sims),
        "speedup_median": _median([s["speedup"] for s in sims]),
        "scalar_seconds": sum(s["scalar_seconds"] for s in sims),
        "bits_seconds": sum(s["bits_seconds"] for s in sims),
    }
    aggregate["speedup_total"] = aggregate["scalar_seconds"] / max(
        aggregate["bits_seconds"], 1e-12
    )
    report = {
        "meta": {
            "quick": quick,
            "scale": scale,
            "cycles": cycles,
            "repeats": repeats,
            "designs": designs,
            "python": platform.python_version(),
            "min_speedup": MIN_SPEEDUP,
        },
        "designs": rows,
        "aggregate": aggregate,
        "fuzz": bench_fuzz(cycles),
    }
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    spans = {}
    for name, row in rows.items():
        spans[f"{name}.sim.bits"] = row["sim"]["bits_seconds"]
        spans[f"{name}.sim.scalar"] = row["sim"]["scalar_seconds"]
        spans[f"{name}.check.bits"] = row["check"]["bits_seconds"]
    spans["fuzz.pipeline"] = report["fuzz"]["pipeline"]["seconds"]
    append_run(
        "bench.verify",
        spans,
        config=dict(report["meta"]),
        metrics=dict(aggregate),
    )
    return report


# --------------------------------------------------------------------- #
# pytest entry


def test_verify_bench_quick(tmp_path, monkeypatch):
    """Quick harness sanity: runs, emits JSON, kernel >=20x the oracle,
    verdicts bit-identical, mutation kill rate 100%."""
    out = tmp_path / "BENCH_verify.json"
    monkeypatch.setattr(sys.modules[__name__], "OUT_PATH", out)
    report = run_bench(quick=True)
    assert out.exists()
    for name, row in report["designs"].items():
        assert row["check"]["verdicts_identical"], name
        assert row["check"]["equivalent"], name
    assert report["aggregate"]["speedup_total"] >= MIN_SPEEDUP
    assert report["fuzz"]["mutation"]["kill_rate"] == 1.0
    assert report["fuzz"]["pipeline"]["failures"] == 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--designs", help="comma-separated design names")
    parser.add_argument("--scale", type=float)
    parser.add_argument("--cycles", type=int)
    parser.add_argument("--repeats", type=int)
    args = parser.parse_args(argv)
    report = run_bench(
        quick=args.quick,
        designs=args.designs.split(",") if args.designs else None,
        scale=args.scale,
        cycles=args.cycles,
        repeats=args.repeats,
    )
    print(json.dumps(report, indent=2))
    print(f"wrote {OUT_PATH}")
    speedup = report["aggregate"]["speedup_total"]
    if speedup < MIN_SPEEDUP:
        print(
            f"kernel speedup {speedup:.1f}x below the {MIN_SPEEDUP:.0f}x "
            "floor",
            file=sys.stderr,
        )
        return 1
    print(f"kernel speedup {speedup:.1f}x (floor {MIN_SPEEDUP:.0f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
