"""Benchmark: the repo's extension artefacts (Pareto sweep, BDD sweep,
Verilog I/O, register merging)."""

import pytest

from benchmarks.conftest import SCALE
from repro.experiments.pareto import pareto_sweep
from repro.mcretime import Classifier, merge_shareable_registers
from repro.netlist import read_verilog, write_blif, write_verilog
from repro.opt import sweep_equivalent_gates


@pytest.fixture(scope="module")
def subject(mapped_designs):
    name = "C5" if "C5" in mapped_designs else next(iter(mapped_designs))
    return mapped_designs[name][1].circuit


def test_pareto_sweep(benchmark, subject):
    result = benchmark(pareto_sweep, subject, 4)
    assert result.phi_min <= result.phi_original + 1e-9
    benchmark.extra_info.update(
        {
            "phi_min": round(result.phi_min, 2),
            "phi_original": round(result.phi_original, 2),
            "points": len(result.points),
        }
    )


def test_bdd_sweep(benchmark, subject):
    def run():
        work = subject.clone()
        return sweep_equivalent_gates(work)

    merged = benchmark(run)
    benchmark.extra_info["merged"] = merged


def test_register_merge(benchmark, subject):
    classifier = Classifier(subject)

    def run():
        work = subject.clone()
        return merge_shareable_registers(work, classifier)

    benchmark(run)


def test_verilog_roundtrip(benchmark, subject):
    def run():
        return read_verilog(write_verilog(subject))

    circuit = benchmark(run)
    assert len(circuit.registers) == len(subject.registers)


def test_blif_write(benchmark, subject):
    text = benchmark(write_blif, subject)
    assert text.startswith(".model")
