"""Benchmark: disabled-tracing overhead of the obs instrumentation.

The retiming hot loops (PR 2's compiled kernels) carry permanent
``obs.span`` / ``obs.count`` / ``obs.gauge`` call sites.  With no
tracer installed each call is one global load plus an identity check —
this bench gates that the *disabled* path stays under 3 % overhead by
timing the kernel loops twice, interleaved: once against the real
:mod:`repro.obs` dispatch functions and once with them swapped for
bare do-nothing stubs (the cheapest possible baseline the call sites
permit).  If a future change makes the disabled path do real work, the
ratio trips the gate.

Runs under pytest (``pytest benchmarks/bench_obs.py``) or standalone::

    PYTHONPATH=src:. python benchmarks/bench_obs.py --check-overhead
    PYTHONPATH=src:. python benchmarks/bench_obs.py --smoke \
        --out-dir /tmp/obs_smoke

``--check-overhead`` exits non-zero when any kernel loop exceeds the
threshold (default 3 %).  ``--smoke`` runs one traced Table-2 row,
validates the Chrome-trace and JSONL schemas, and checks that span
totals reproduce the flow's ``timings`` dict exactly — the CI
``obs-smoke`` contract.  ``--check-bus`` gates the *distributed*
telemetry plane: a traced saturation batch with the worker→supervisor
telemetry bus attached must stay within 5 % of the same batch with the
bus disabled (JSONL tracing on in both runs, so the delta isolates the
bus itself).  ``--check-explain`` gates the explanation plane
(:mod:`repro.obs.explain`): certificate extraction must be strictly
post-hoc, so an ``explain=True`` run minus its recorded ``explain``
stage must match a plain ``explain=False`` run within 3 % — and the
explanation it produces must re-validate.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import threading
import time
from pathlib import Path

try:
    from benchmarks._ledger import append_run
except ImportError:  # standalone: python benchmarks/bench_obs.py
    from _ledger import append_run

_perf_counter = time.perf_counter

#: disabled-tracing overhead budget (percent) for --check-overhead
OVERHEAD_BUDGET_PCT = 3.0

#: telemetry-bus budget (percent) on traced saturation wall time
BUS_BUDGET_PCT = 5.0

#: explain-off budget (percent): solve phases of an explained run vs a
#: plain run — certificate extraction must be entirely post-hoc
EXPLAIN_BUDGET_PCT = 3.0

#: A/B repeats for the explain gate
EXPLAIN_REPEATS = 7

#: interleaved repeats per workload (median taken over these)
DEFAULT_REPEATS = 15

#: A/B repeats for the bus gate (each repeat runs two full batches)
BUS_REPEATS = 3


@contextlib.contextmanager
def _stubbed_obs():
    """Swap the obs dispatch helpers for bare no-op stubs.

    Instrumented modules hold a reference to the ``repro.obs`` package
    and resolve ``obs.span`` etc. at call time, so patching the package
    attributes reaches every call site at once.
    """
    from repro import obs

    saved = {
        name: getattr(obs, name)
        for name in ("span", "timed", "count", "gauge", "enabled")
    }

    def _null_span(*args, **kwargs):
        return obs.NULL_SPAN

    def _noop(*args, **kwargs):
        return None

    obs.span = _null_span
    obs.timed = lambda *a, **k: obs.Stopwatch()
    obs.count = _noop
    obs.gauge = _noop
    obs.enabled = lambda: False
    try:
        yield
    finally:
        for name, fn in saved.items():
            setattr(obs, name, fn)


def _paired_overhead(fn, repeats: int) -> tuple[float, float, float]:
    """Overhead estimate for *fn*: (real_s, stub_s, overhead_pct).

    Each repeat times one real run and one stubbed run back to back and
    keeps their ratio; the reported overhead is the **median of the
    per-pair ratios**.  Adjacent runs share the same host conditions
    (~tens of ms apart), so machine-wide drift cancels out of each
    ratio, and the pair order alternates every repeat because running
    second in a pair is measurably faster (warm allocator/branch state)
    — a fixed order would bias the ratio far more than the effect under
    test.
    """
    import statistics

    fn()
    fn()  # two warm-up runs; the first is much slower than steady state
    real = []
    stub = []
    ratios = []

    def run_real() -> float:
        t0 = _perf_counter()
        fn()
        dt = _perf_counter() - t0
        real.append(dt)
        return dt

    def run_stub() -> float:
        with _stubbed_obs():
            t0 = _perf_counter()
            fn()
            dt = _perf_counter() - t0
        stub.append(dt)
        return dt

    for i in range(repeats):
        if i % 2 == 0:
            a = run_real()
            b = run_stub()
        else:
            b = run_stub()
            a = run_real()
        ratios.append(a / b)
    overhead = 100.0 * (statistics.median(ratios) - 1.0)
    return statistics.median(real), statistics.median(stub), overhead


def _workloads(quick: bool):
    """The PR 2 kernel hot loops, sized so each run is well above timer
    resolution (tens of milliseconds)."""
    from repro import kernels
    from repro.retime.minperiod import base_system
    from tests.retime.helpers import random_graph

    n, m = (150, 500) if quick else (400, 1400)
    graph = random_graph(11, n_vertices=n, n_edges=m)
    cg = kernels.compile_graph(graph)
    zero = [0] * cg.n
    # each workload must run tens of milliseconds: at the 1–2 ms scale
    # scheduler/allocator noise swamps the sub-percent effect under test
    sweeps = 250 if quick else 300
    checks = 12 if quick else 6

    def delta_sweep():
        for _ in range(sweeps):
            kernels.delta_sweep(cg, zero)

    def check_period():
        from repro.retime.minperiod import _check_period_kernel

        phi = _min_period_kernel_phi[0]
        for _ in range(checks):
            _check_period_kernel(graph, phi, base_system(graph))

    def min_period():
        kernels.min_period_kernel(graph, None, 1e-6)

    # resolve the achievable period once, outside the timed region
    from repro.kernels import min_period_kernel

    _min_period_kernel_phi = [min_period_kernel(graph, None, 1e-6).phi]

    return {
        "delta_sweep": delta_sweep,
        "check_period": check_period,
        "min_period": min_period,
    }


def check_overhead(
    repeats: int = DEFAULT_REPEATS,
    threshold: float = OVERHEAD_BUDGET_PCT,
    quick: bool = False,
) -> dict[str, dict[str, float]]:
    """Measure disabled-obs overhead per kernel loop; raises on breach.

    The "real" side runs with the full obs *and* profiler machinery
    importable but inactive — no tracer installed, no sampler thread
    alive — so the gate covers the cost of having the profiler in the
    process without running it (the default production state).
    """
    from repro import obs

    assert not obs.enabled(), "tracing must be disabled for the overhead gate"
    assert not any(
        t.name == "repro-obs-sampler" for t in threading.enumerate()
    ), "the sampling profiler must not be running during the overhead gate"
    report: dict[str, dict[str, float]] = {}
    failures = []
    for name, fn in _workloads(quick).items():
        # a genuine regression breaches the budget on every attempt;
        # host-noise spikes (~1.5 % sigma here) do not survive retries
        best = None
        for attempt in range(3):
            real, stub, overhead = _paired_overhead(fn, repeats)
            if best is None or overhead < best[2]:
                best = (real, stub, overhead)
            if overhead <= threshold:
                break
            print(f"{name}: {overhead:+.2f}% > {threshold}%, re-measuring")
        real, stub, overhead = best
        report[name] = {
            "real_s": real,
            "stub_s": stub,
            "overhead_pct": overhead,
        }
        print(
            f"{name:16s} real {real * 1e3:8.2f}ms  "
            f"stub {stub * 1e3:8.2f}ms  overhead {overhead:+6.2f}%"
        )
        if overhead > threshold:
            failures.append(f"{name}: {overhead:.2f}% > {threshold}%")
    spans: dict[str, float] = {}
    overheads: dict[str, float] = {}
    for name, row in report.items():
        spans[f"{name}.real"] = row["real_s"]
        spans[f"{name}.stub"] = row["stub_s"]
        overheads[f"{name}.overhead_pct"] = row["overhead_pct"]
    append_run(
        "bench.obs",
        spans,
        config={"repeats": repeats, "threshold": threshold, "quick": quick},
        metrics=overheads,
    )
    if failures:
        raise AssertionError(
            "disabled-tracing overhead budget exceeded: " + "; ".join(failures)
        )
    return report


# --------------------------------------------------------------------- #
# telemetry-bus throughput gate (--check-bus)


def _traced_batch_seconds(
    jobs, workers: int, trace_dir: Path, telemetry: bool
) -> float:
    """Wall time for one fully traced batch, bus on or off."""
    from repro.service import RetimeService

    service = RetimeService(
        workers=workers,
        job_timeout=600.0,
        trace_dir=trace_dir,
        telemetry=telemetry,
    )
    try:
        t0 = _perf_counter()
        ids = [service.submit(job) for job in jobs]
        results = [service.wait(job_id, timeout=600) for job_id in ids]
        elapsed = _perf_counter() - t0
        assert all(r.ok for r in results), [
            r.error.message for r in results if not r.ok
        ]
        return elapsed
    finally:
        service.close()


def check_bus(
    out_dir: Path,
    repeats: int = BUS_REPEATS,
    threshold: float = BUS_BUDGET_PCT,
    quick: bool = False,
) -> dict[str, float]:
    """Gate: the live telemetry bus must not tax traced throughput.

    Both sides run the same cold target-period sweep with JSONL tracing
    enabled; only the worker→supervisor bus differs.  Pairs run back to
    back with alternating order (same rationale as
    :func:`_paired_overhead`) and the gate judges the median per-pair
    ratio.
    """
    import statistics

    try:
        from benchmarks.bench_service import _sweep_jobs
    except ImportError:  # standalone: python benchmarks/bench_obs.py
        from bench_service import _sweep_jobs

    import os

    designs = ["C1", "C3"] if quick else ["C1", "C3", "C5"]
    n_jobs = 8 if quick else 12
    workers = min(4, os.cpu_count() or 1)
    jobs = _sweep_jobs(designs, 0.3, n_jobs)
    out_dir.mkdir(parents=True, exist_ok=True)

    run_index = 0

    def run(telemetry: bool) -> float:
        nonlocal run_index
        run_index += 1
        trace_dir = out_dir / f"traces_{run_index:02d}"
        return _traced_batch_seconds(jobs, workers, trace_dir, telemetry)

    run(telemetry=True)  # warm-up: imports, design build caches

    def measure() -> dict[str, float]:
        with_bus, without_bus, ratios = [], [], []
        for i in range(repeats):
            if i % 2 == 0:
                a = run(telemetry=True)
                b = run(telemetry=False)
            else:
                b = run(telemetry=False)
                a = run(telemetry=True)
            with_bus.append(a)
            without_bus.append(b)
            ratios.append(a / b)
        return {
            "with_bus_s": statistics.median(with_bus),
            "without_bus_s": statistics.median(without_bus),
            "overhead_pct": 100.0 * (statistics.median(ratios) - 1.0),
        }

    # a real bus regression breaches on every attempt; pool-startup and
    # scheduler noise (batches are short) does not survive retries
    report = None
    for attempt in range(3):
        candidate = measure()
        if report is None or candidate["overhead_pct"] < report["overhead_pct"]:
            report = candidate
        if report["overhead_pct"] <= threshold:
            break
        print(
            f"bus: {candidate['overhead_pct']:+.2f}% > {threshold}%, "
            "re-measuring"
        )
    overhead = report["overhead_pct"]
    print(
        f"telemetry bus    on {report['with_bus_s']:8.2f}s  "
        f"off {report['without_bus_s']:8.2f}s  overhead {overhead:+6.2f}%"
    )
    append_run(
        "bench.obs.bus",
        {"with_bus": report["with_bus_s"], "without_bus": report["without_bus_s"]},
        config={
            "designs": designs,
            "n_jobs": n_jobs,
            "workers": workers,
            "repeats": repeats,
            "threshold": threshold,
            "quick": quick,
        },
        metrics={"bus_overhead_pct": overhead},
    )
    if overhead > threshold:
        raise AssertionError(
            f"telemetry bus overhead {overhead:.2f}% > {threshold}% "
            f"of traced saturation wall time"
        )
    return report


# --------------------------------------------------------------------- #
# explanation-plane gate (--check-explain)


def check_explain(
    repeats: int = EXPLAIN_REPEATS,
    threshold: float = EXPLAIN_BUDGET_PCT,
    quick: bool = False,
) -> dict[str, float]:
    """Gate: requesting an explanation must not tax the solve itself.

    Certificate extraction (:mod:`repro.obs.explain`) is specified as
    strictly post-hoc — ``mc_retime(explain=True)`` runs the exact same
    solving phases as ``explain=False`` and only then walks the solved
    system.  This gate measures that contract from the outside: the
    wall time of an explained run *minus its recorded ``explain`` stage*
    must stay within the threshold of a plain run (paired, alternating
    order, median per-pair ratio — same protocol as the obs overhead
    gate).  A regression here means explanation capture leaked into the
    solver hot path.  The explanation produced on the way is also
    re-validated, so the gate doubles as a certificate smoke test.
    """
    import statistics

    from repro.mcretime import mc_retime
    from repro.synth import build_datapath

    design = "NTT4" if quick else "BFLY8"
    circuit = build_datapath(design).circuit

    def run(explain: bool) -> tuple[float, object]:
        t0 = _perf_counter()
        result = mc_retime(circuit, explain=explain)
        return _perf_counter() - t0, result

    run(explain=True)  # warm-up: imports, BDD caches, kernels
    plain_s, solve_s, ratios = [], [], []
    summary = None
    for i in range(repeats):
        if i % 2 == 0:
            off, _ = run(explain=False)
            on, res = run(explain=True)
        else:
            on, res = run(explain=True)
            off, _ = run(explain=False)
        explanation = res.explanation
        assert explanation is not None and explanation["valid"], (
            "explained run produced an invalid explanation: "
            f"{explanation and explanation['errors']}"
        )
        summary = explanation
        solve = on - res.timings.get("explain", 0.0)
        plain_s.append(off)
        solve_s.append(solve)
        ratios.append(solve / off)
    overhead = 100.0 * (statistics.median(ratios) - 1.0)
    report = {
        "plain_s": statistics.median(plain_s),
        "explained_solve_s": statistics.median(solve_s),
        "overhead_pct": overhead,
        "certificates": float(summary["certificates"]),
    }
    print(
        f"explain gate     off {report['plain_s'] * 1e3:8.2f}ms  "
        f"on-solve {report['explained_solve_s'] * 1e3:8.2f}ms  "
        f"overhead {overhead:+6.2f}%  "
        f"({summary['certificates']} certificates valid)"
    )
    append_run(
        "bench.obs.explain",
        {"plain": report["plain_s"], "explained_solve": report["explained_solve_s"]},
        config={
            "design": design,
            "repeats": repeats,
            "threshold": threshold,
            "quick": quick,
        },
        metrics={
            "explain_overhead_pct": overhead,
            "certificates": report["certificates"],
        },
    )
    if overhead > threshold:
        raise AssertionError(
            f"explain-off overhead {overhead:.2f}% > {threshold}%: "
            "explanation capture leaked into the solver hot path"
        )
    return report


# --------------------------------------------------------------------- #
# traced smoke run (the CI obs-smoke contract)


def smoke(out_dir: Path, design: str = "C1", scale: float = 0.3) -> None:
    """One traced Table-2 row; validates every export format."""
    from repro import obs
    from repro.flows import retime_flow
    from repro.obs import report
    from repro.synth import build_design
    from repro.timing import XC4000E_DELAY

    out_dir.mkdir(parents=True, exist_ok=True)
    trace = out_dir / "obs_smoke_trace.json"
    jsonl = out_dir / "obs_smoke_run.jsonl"
    with obs.session(trace=trace, jsonl=jsonl) as tracer:
        circuit = build_design(design, scale).circuit
        flow = retime_flow(circuit, XC4000E_DELAY)

    report.validate_chrome_trace(trace)
    report.validate_jsonl(jsonl)
    json.loads(trace.read_text())  # belt and braces: well-formed JSON

    totals = report.span_totals(report.load_events(jsonl))
    for stage, seconds in flow.timings.items():
        if stage == "total":
            continue
        assert totals[f"flow.{stage}"] == seconds, (
            f"span total for flow.{stage} != timings[{stage!r}] "
            f"({totals.get('flow.' + stage)} vs {seconds})"
        )

    counters = tracer.counters
    for required in ("feas.passes", "bf.rounds", "mcf.augmentations"):
        assert counters.get(required, 0) > 0, f"counter {required} missing"

    print(f"obs smoke OK: {design} traced, {len(tracer.events)} events")
    print(f"  chrome trace : {trace}")
    print(f"  jsonl log    : {jsonl}")
    print(f"  counters     : " + ", ".join(sorted(counters)))


# --------------------------------------------------------------------- #
# pytest entry points (quick variants; benchmarks/ is not in testpaths,
# run explicitly with `pytest benchmarks/bench_obs.py`)


def test_overhead_gate_quick():
    check_overhead(repeats=5, threshold=OVERHEAD_BUDGET_PCT, quick=True)


def test_explain_gate_quick():
    check_explain(repeats=3, quick=True)


def test_smoke(tmp_path):
    smoke(tmp_path, design="C1", scale=0.3)


# --------------------------------------------------------------------- #


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check-overhead", action="store_true")
    parser.add_argument("--check-bus", action="store_true")
    parser.add_argument("--check-explain", action="store_true")
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument(
        "--threshold", type=float, default=OVERHEAD_BUDGET_PCT,
        help="overhead budget in percent (default: %(default)s)",
    )
    parser.add_argument(
        "--bus-repeats", type=int, default=BUS_REPEATS,
        help="A/B pairs for --check-bus (default: %(default)s)",
    )
    parser.add_argument(
        "--bus-threshold", type=float, default=BUS_BUDGET_PCT,
        help="bus overhead budget in percent (default: %(default)s)",
    )
    parser.add_argument(
        "--out-dir", type=Path, default=Path("benchmarks") / "obs_smoke",
        help="where --smoke writes its trace artifacts",
    )
    parser.add_argument("--design", default="C1")
    parser.add_argument("--scale", type=float, default=0.3)
    args = parser.parse_args(argv)

    if not (
        args.check_overhead
        or args.check_bus
        or args.check_explain
        or args.smoke
    ):
        parser.error(
            "pick at least one of --check-overhead / --check-bus / "
            "--check-explain / --smoke"
        )
    try:
        if args.check_overhead:
            check_overhead(args.repeats, args.threshold, args.quick)
        if args.check_explain:
            check_explain(
                repeats=EXPLAIN_REPEATS if not args.quick else 3,
                quick=args.quick,
            )
        if args.check_bus:
            check_bus(
                args.out_dir / "bus_gate",
                repeats=args.bus_repeats,
                threshold=args.bus_threshold,
                quick=args.quick,
            )
        if args.smoke:
            smoke(args.out_dir, args.design, args.scale)
    except AssertionError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
