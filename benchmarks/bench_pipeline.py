"""Benchmark: pipelining and C-slow retiming on the datapath family.

Runs the two :mod:`repro.pipeline` transforms over the datapath
designs (:mod:`repro.synth.datapath` — NTT butterfly, modular
multiply, MAC pipelines) under the unit delay model, measuring:

* **C-slow** for C in {2, 3}: aggregate throughput gain, i.e. the
  ``period_before / period_after`` ratio (C threads each advance once
  per C global cycles, so aggregate work per second improves by this
  factor), plus the thread-interleaving refinement check;
* **pipelining** for K stages: achieved period vs the K-stage lower
  bound, plus the latency-shifted equivalence check.

Writes ``benchmarks/BENCH_pipeline.json`` (override with
``REPRO_BENCH_PIPELINE_OUT``) and appends one ``bench.pipeline``
run-ledger record for the perf sentinel.

Runs under pytest (``pytest benchmarks/bench_pipeline.py``) or
standalone::

    PYTHONPATH=src:. python benchmarks/bench_pipeline.py [--quick]
        [--designs NTT4,MAC6] [--cycles 24] [--no-verify]

The committed JSON doubles as the CI contract: C-slowing with C >= 2
must reach >= 2x aggregate throughput gain on at least two designs
(MIN_GAIN / MIN_DESIGNS_AT_GAIN), with every run verified.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

try:
    from benchmarks._ledger import append_run
except ImportError:  # standalone: python benchmarks/bench_pipeline.py
    from _ledger import append_run

OUT_PATH = Path(
    os.environ.get(
        "REPRO_BENCH_PIPELINE_OUT",
        Path(__file__).resolve().parent / "BENCH_pipeline.json",
    )
)

FULL_DESIGNS = ["NTT4", "BFLY8", "MODMUL6", "MAC6"]
QUICK_DESIGNS = ["NTT4", "MODMUL6"]

#: acceptance floor: aggregate throughput gain for some C >= 2 ...
MIN_GAIN = 2.0
#: ... reached on at least this many designs
MIN_DESIGNS_AT_GAIN = 2


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def bench_design(
    name: str, factors: list[int], stages: int, cycles: int, verify: bool
) -> dict[str, object]:
    from repro.netlist import circuit_stats, format_class_histogram
    from repro.pipeline import cslow_retime, pipeline_retime
    from repro.synth import build_datapath
    from repro.verify import check_cslow, check_pipeline

    circuit = build_datapath(name).circuit
    stats = circuit_stats(circuit)
    row: dict[str, object] = {
        "ff": stats.n_ff,
        "gates": stats.n_gates,
        "classes": format_class_histogram(stats.class_histogram),
        "cslow": {},
    }

    for factor in factors:
        result, seconds = _timed(lambda: cslow_retime(circuit, factor))
        gain = result.period_before / max(result.period_after, 1e-12)
        entry: dict[str, object] = {
            "period_before": result.period_before,
            "period_after": result.period_after,
            "throughput_gain": gain,
            "registers_replicated": result.registers_replicated,
            "seconds": seconds,
        }
        if verify:
            check = check_cslow(
                circuit, result.circuit, factor, cycles=cycles
            )
            if not check.equivalent:
                raise AssertionError(
                    f"{name} C={factor}: refinement check failed: "
                    f"{check.reason}"
                )
            entry["verified"] = True
        row["cslow"][str(factor)] = entry

    result, seconds = _timed(lambda: pipeline_retime(circuit, stages))
    entry = {
        "stages": stages,
        "period_before": result.period_before,
        "period_after": result.period_after,
        "lower_bound": result.lower_bound,
        "balance_slack": result.period_after - result.lower_bound,
        "registers_inserted": result.registers_inserted,
        "seconds": seconds,
    }
    if verify:
        check = check_pipeline(
            circuit, result.circuit, shift=stages, cycles=cycles + stages
        )
        if not check.equivalent:
            raise AssertionError(
                f"{name} K={stages}: pipeline check failed: {check.reason}"
            )
        entry["verified"] = True
    row["pipeline"] = entry
    return row


def run_bench(
    quick: bool = False,
    designs: list[str] | None = None,
    cycles: int | None = None,
    verify: bool = True,
) -> dict[str, object]:
    if designs is None:
        designs = QUICK_DESIGNS if quick else FULL_DESIGNS
    if cycles is None:
        cycles = 24 if quick else 48
    factors = [2, 3]
    stages = 3
    rows = {
        name: bench_design(name, factors, stages, cycles, verify)
        for name in designs
    }
    best_gains = {
        name: max(
            entry["throughput_gain"] for entry in row["cslow"].values()
        )
        for name, row in rows.items()
    }
    aggregate = {
        "designs_at_floor": sum(
            1 for gain in best_gains.values() if gain >= MIN_GAIN
        ),
        "gain_min": min(best_gains.values()),
        "gain_max": max(best_gains.values()),
        "best_gains": best_gains,
        "pipeline_slack_max": max(
            row["pipeline"]["balance_slack"] for row in rows.values()
        ),
    }
    report = {
        "meta": {
            "quick": quick,
            "cycles": cycles,
            "designs": designs,
            "factors": factors,
            "stages": stages,
            "verify": verify,
            "python": platform.python_version(),
            "min_gain": MIN_GAIN,
            "min_designs_at_gain": MIN_DESIGNS_AT_GAIN,
        },
        "designs": rows,
        "aggregate": aggregate,
    }
    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    spans = {}
    for name, row in rows.items():
        for factor, entry in row["cslow"].items():
            spans[f"{name}.cslow{factor}"] = entry["seconds"]
        spans[f"{name}.pipeline"] = row["pipeline"]["seconds"]
    append_run(
        "bench.pipeline",
        spans,
        config=dict(report["meta"]),
        metrics={
            "designs_at_floor": aggregate["designs_at_floor"],
            "gain_min": aggregate["gain_min"],
            "gain_max": aggregate["gain_max"],
        },
    )
    return report


# --------------------------------------------------------------------- #
# pytest entry


def test_pipeline_bench_quick(tmp_path, monkeypatch):
    """Quick harness sanity: runs, emits JSON, >=2x aggregate gain on at
    least two designs, every transform verified."""
    out = tmp_path / "BENCH_pipeline.json"
    monkeypatch.setattr(sys.modules[__name__], "OUT_PATH", out)
    monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "ledger.jsonl"))
    report = run_bench(quick=True)
    assert out.exists()
    for name, row in report["designs"].items():
        for entry in row["cslow"].values():
            assert entry["verified"], name
        assert row["pipeline"]["verified"], name
        assert row["pipeline"]["period_after"] >= row["pipeline"]["lower_bound"]
    assert report["aggregate"]["designs_at_floor"] >= MIN_DESIGNS_AT_GAIN


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--designs", help="comma-separated design names")
    parser.add_argument("--cycles", type=int)
    parser.add_argument(
        "--no-verify", action="store_true", help="skip the refinement checks"
    )
    args = parser.parse_args(argv)
    report = run_bench(
        quick=args.quick,
        designs=args.designs.split(",") if args.designs else None,
        cycles=args.cycles,
        verify=not args.no_verify,
    )
    print(json.dumps(report, indent=2))
    print(f"wrote {OUT_PATH}")
    at_floor = report["aggregate"]["designs_at_floor"]
    if at_floor < MIN_DESIGNS_AT_GAIN:
        print(
            f"only {at_floor} design(s) reached the {MIN_GAIN:.1f}x "
            f"aggregate throughput floor (need {MIN_DESIGNS_AT_GAIN})",
            file=sys.stderr,
        )
        return 1
    print(
        f"{at_floor}/{len(report['designs'])} designs at >= "
        f"{MIN_GAIN:.1f}x aggregate throughput (floor "
        f"{MIN_DESIGNS_AT_GAIN} designs)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
