"""Benchmark: Table 2 regeneration — the full mc-retiming flow.

Times ``retime`` + ``remap`` on the mapped designs (mapping itself is
amortised via a session fixture, mirroring the paper's setup where the
retime command runs on the mapped netlist).
"""

from repro.flows import retime_flow


def test_table2_row(benchmark, design_name, mapped_designs):
    circuit, base = mapped_designs[design_name]

    def run():
        return retime_flow(circuit, mapped=base)

    flow = benchmark(run)
    result = flow.retime
    assert result is not None
    benchmark.extra_info.update(
        {
            "#Class": result.n_classes,
            "#Step": f"{result.steps_moved}/{result.steps_possible}",
            "#FF": flow.n_ff,
            "#LUT": flow.n_lut,
            "Delay": round(flow.delay, 2),
            "Rdelay": round(flow.delay / base.delay, 3),
            "local_frac": round(result.stats.local_fraction, 4),
        }
    )
