"""Benchmark: Table 1 regeneration — generate + optimise + map + STA.

Regenerates the paper's Table 1 rows (circuit characteristics after the
minimal-area-for-best-delay script); run ``mcretime-tables --only
table1`` for the full-scale printed table.
"""

from benchmarks.conftest import SCALE
from repro.experiments import table1


def test_table1_row(benchmark, design_name):
    row, _flow = benchmark(table1.run_design, design_name, SCALE)
    assert row.n_ff > 0 and row.n_lut > 0
    benchmark.extra_info.update(
        {"#FF": row.n_ff, "#LUT": row.n_lut, "Delay": round(row.delay, 2)}
    )
